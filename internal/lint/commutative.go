package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// commutativeBody reports whether every effect in a map-range body is
// provably independent of the visit order, so the loop as a whole
// computes the same result under any permutation of the keys. The
// proof obligations, statement by statement:
//
//   - writes keyed exactly by the range key (m2[k] = v, m2[k] op= v,
//     delete(m2, k)) touch each target key in at most one iteration,
//     so any per-key effect is safe;
//   - integer/boolean accumulation (n++, n += v, flags |= v) through
//     any lvalue is exact and commutative;
//   - writing a constant into a map (seen[x] = true) is idempotent —
//     collisions write the same value;
//   - min/max folds (if v > best { best = v }) compute an
//     order-independent extremum;
//   - definitions and rebindings of body-local scalars are scratch
//     state that dies with the iteration;
//   - if/else and blocks compose the above, provided no condition or
//     right-hand side reads loop-carried mutable state outside the
//     sanctioned forms; `continue` is allowed, `break` and `return`
//     are not (which iteration triggers them depends on visit order).
//
// The check assumes calls reachable from the body do not mutate
// loop-carried state (conversions and predicate calls are the norm);
// the runtime determinism suites remain the backstop for that hole.
func commutativeBody(info *types.Info, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return true
	}
	var keyObj types.Object
	if key, ok := rs.Key.(*ast.Ident); ok && key.Name != "_" {
		keyObj = info.ObjectOf(key)
	}
	written := writtenObjects(info, rs)
	if written == nil {
		return false
	}
	// Loop-carried state: objects written in the body but declared
	// outside it. Body-local objects are per-iteration scratch.
	inBody := func(obj types.Object) bool {
		return obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End()
	}
	carried := map[types.Object]bool{}
	for obj := range written {
		if !inBody(obj) {
			carried[obj] = true
		}
	}
	// readsCarried reports whether e reads loop-carried mutable
	// state, ignoring reads of allow[obj] at exactly m[key] (the
	// per-key read-modify-write form).
	var readsCarried func(e ast.Expr, allow types.Object) bool
	readsCarried = func(e ast.Expr, allow types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if ix, ok := n.(*ast.IndexExpr); ok && allow != nil && keyObj != nil {
				if rootObject(info, ix.X) == allow {
					if kid, ok := ix.Index.(*ast.Ident); ok && info.ObjectOf(kid) == keyObj {
						return false // sanctioned m[k] self-read
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && carried[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	isIntegerish := func(t types.Type) bool {
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
	}
	isConstant := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.Value != nil
	}
	// keyedByRangeKey reports whether ix indexes a map at exactly the
	// range key — a target key touched in at most one iteration.
	// Writing the ranged map itself at the range key is an in-place
	// update of the key being visited, which the spec defines and no
	// visit order can reorder.
	keyedByRangeKey := func(ix *ast.IndexExpr) bool {
		if keyObj == nil || !isMapType(info, ix.X) {
			return false
		}
		kid, ok := ix.Index.(*ast.Ident)
		return ok && info.ObjectOf(kid) == keyObj
	}
	// localScalar reports whether e is a bare identifier for a
	// body-local variable (writes through pointers/selectors may
	// alias loop-carried state and do not count).
	localScalar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.ObjectOf(id)
		return obj != nil && inBody(obj)
	}

	var stmtOK func(s ast.Stmt) bool
	maxMinFold := func(s *ast.IfStmt) bool {
		cond, ok := s.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.LSS && cond.Op != token.GTR) || s.Else != nil || s.Init != nil {
			return false
		}
		if len(s.Body.List) != 1 {
			return false
		}
		as, ok := s.Body.List[0].(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 {
			return false
		}
		tgt := rootObject(info, as.Lhs[0])
		if tgt == nil || !carried[tgt] {
			return false
		}
		// One comparison operand must be the fold target, the other
		// the assigned value, and neither may read other carried
		// state.
		matches := func(a, b ast.Expr) bool {
			return rootObject(info, a) == tgt && !readsCarried(b, tgt)
		}
		return matches(cond.X, cond.Y) || matches(cond.Y, cond.X)
	}
	stmtOK = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				for _, lhs := range st.Lhs {
					if !localScalar(lhs) && !isBlank(lhs) {
						return false
					}
				}
				for _, rhs := range st.Rhs {
					if readsCarried(rhs, nil) {
						return false
					}
				}
				return true
			}
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return false
			}
			lhs, rhs := st.Lhs[0], st.Rhs[0]
			switch st.Tok {
			case token.ASSIGN:
				// Rebinding a body-local scalar is scratch state.
				if localScalar(lhs) {
					return !readsCarried(rhs, nil)
				}
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					return false
				}
				// Per-key rewrite: m2[k] = f(m2[k], ...) touches
				// this key in exactly one iteration.
				if keyedByRangeKey(ix) {
					return !readsCarried(rhs, rootObject(info, ix.X))
				}
				// Idempotent set insertion: m2[any] = constant.
				return isConstant(rhs) && !readsCarried(ix.Index, nil) && !readsCarried(ix.X, nil)
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				if readsCarried(rhs, nil) {
					return false
				}
				if ix, ok := lhs.(*ast.IndexExpr); ok && keyedByRangeKey(ix) {
					return true // per-key, any element type
				}
				// Elsewhere the op must be exact and commutative:
				// integer or boolean, never floating point.
				return isIntegerish(info.TypeOf(lhs))
			case token.QUO_ASSIGN, token.MUL_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
				// Non-commutative across iterations; safe only on a
				// per-key target.
				ix, ok := lhs.(*ast.IndexExpr)
				return ok && keyedByRangeKey(ix) && !readsCarried(rhs, rootObject(info, ix.X))
			default:
				return false
			}
		case *ast.IncDecStmt:
			if ix, ok := st.X.(*ast.IndexExpr); ok && keyedByRangeKey(ix) {
				return true
			}
			return isIntegerish(info.TypeOf(st.X))
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			fid, ok := call.Fun.(*ast.Ident)
			if !ok || fid.Name != "delete" || len(call.Args) != 2 {
				return false
			}
			if _, isBuiltin := info.ObjectOf(fid).(*types.Builtin); !isBuiltin {
				return false
			}
			kid, ok := call.Args[1].(*ast.Ident)
			return ok && keyObj != nil && info.ObjectOf(kid) == keyObj
		case *ast.IfStmt:
			if maxMinFold(st) {
				return true
			}
			// A comma-ok (or other allowed) init is fine; the cond
			// itself must not read loop-carried state.
			if st.Init != nil && !stmtOK(st.Init) {
				return false
			}
			if readsCarried(st.Cond, nil) {
				return false
			}
			for _, s := range st.Body.List {
				if !stmtOK(s) {
					return false
				}
			}
			switch e := st.Else.(type) {
			case nil:
				return true
			case *ast.BlockStmt:
				for _, s := range e.List {
					if !stmtOK(s) {
						return false
					}
				}
				return true
			case *ast.IfStmt:
				return stmtOK(e)
			default:
				return false
			}
		case *ast.BlockStmt:
			for _, s := range st.List {
				if !stmtOK(s) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			// Which iteration breaks or returns depends on visit
			// order; only continue is order-neutral.
			return st.Tok == token.CONTINUE
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return false
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					return false
				}
				for _, v := range vs.Values {
					if readsCarried(v, nil) {
						return false
					}
				}
			}
			return true
		default:
			return false
		}
	}
	for _, s := range rs.Body.List {
		if !stmtOK(s) {
			return false
		}
	}
	return true
}
