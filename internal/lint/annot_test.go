package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"whereroam/internal/lint"
)

// parseUnit builds a parse-only unit from one synthetic source file.
// Annotation grammar is validated by lint.Run whatever analyzers run,
// so these tests pass none.
func parseUnit(t *testing.T, src string) *lint.Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "annot.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &lint.Unit{Path: lint.ModulePath + "/internal/dataset", Fset: fset, Files: []*ast.File{f}}
}

func TestAnnotationMissingReason(t *testing.T) {
	u := parseUnit(t, `// Package p is a fixture.
package p

//roamvet:maporder-ok
func f() {}
`)
	diags := lint.Run(u, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want 1", len(diags), diags)
	}
	if diags[0].Analyzer != "roamvet" || !strings.Contains(diags[0].Message, "malformed roamvet annotation") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}

func TestAnnotationUnknownAnalyzer(t *testing.T) {
	u := parseUnit(t, `// Package p is a fixture.
package p

//roamvet:frobnicate-ok because reasons
func f() {}
`)
	diags := lint.Run(u, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want 1", len(diags), diags)
	}
	if diags[0].Analyzer != "roamvet" || !strings.Contains(diags[0].Message, `unknown analyzer "frobnicate"`) {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}

func TestAnnotationWellFormed(t *testing.T) {
	u := parseUnit(t, `// Package p is a fixture.
package p

//roamvet:maporder-ok the loop only counts, and counting commutes
func f() {}
`)
	if diags := lint.Run(u, nil); len(diags) != 0 {
		t.Fatalf("got %d diagnostics %v, want 0", len(diags), diags)
	}
}
