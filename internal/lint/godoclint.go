package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Godoclint enforces the documentation contract from
// docs/ARCHITECTURE.md, previously enforced only by doclint_test.go
// (which is now a thin wrapper over this analyzer): every package in
// the module carries a package-level doc comment, and the
// strict-godoc packages ([StrictGodocPackages] — the pipeline-facing
// API surface) document every exported declaration: functions,
// methods on exported receivers, types, and var/const specs.
var Godoclint = &Analyzer{
	Name: "godoclint",
	Doc:  "requires package doc comments everywhere and full godoc in the strict-godoc packages",
	Run:  runGodoclint,
}

func runGodoclint(pass *Pass) {
	documented := false
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented = true
			break
		}
	}
	if !documented && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no package-level doc comment", pass.Files[0].Name.Name)
	}
	if !InStrictGodocScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			checkDeclDocumented(pass, decl)
		}
	}
}

func checkDeclDocumented(pass *Pass, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		if d.Doc == nil {
			pass.Reportf(d.Name.Pos(), "exported func %s has no doc comment", d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
			return
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					// A doc comment on the grouped decl covers its
					// specs (the const-block idiom).
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						pass.Reportf(n.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver base type is
// exported (methods on unexported types are not part of the API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
