// Package lint implements roamvet, the static-analysis suite that
// enforces this repository's determinism contract (the 4-rule list in
// docs/ARCHITECTURE.md) plus the documentation contract, at compile
// time rather than in the runtime determinism suites.
//
// The suite follows the analyzer-per-invariant design of
// golang.org/x/tools/go/analysis, re-implemented on the standard
// library alone (this build environment is offline): an [Analyzer] is
// a named rule with a Run function over a type-checked [Unit], and a
// driver — cmd/roamvet standalone, cmd/roamvet as a `go vet -vettool`,
// or the in-process test drivers — decides which analyzers apply to
// which packages via [AnalyzersFor].
//
// Analyzers:
//
//   - maporder: flags `range` over a map in the deterministic
//     packages unless the loop only collects into variables that are
//     sorted afterwards in the same function.
//   - rngpurity: forbids global math/rand state, ad-hoc rand.New /
//     rand.NewSource construction, and time.Now in the deterministic
//     packages — randomness must flow through internal/rng substreams
//     and clocks through configuration.
//   - stablesort: flags sort.Slice whose less function compares
//     timestamps — ties must use sort.SliceStable (the PR 3 bug
//     class).
//   - floatfold: flags floating-point accumulation inside a map range
//     or inside Merge/fold bodies, where shard or iteration order is
//     not pinned (the PR 4 bug class).
//   - godoclint: the documentation contract — every package carries a
//     package doc comment, and the strict-godoc packages document
//     every exported declaration.
//
// A finding at a provably-safe site is suppressed with an annotation
// comment on the flagged line or the line above:
//
//	//roamvet:<analyzer>-ok <reason>
//
// The reason is mandatory; an annotation without one is itself a
// diagnostic. Annotations are deliberately per-site and per-analyzer
// so that every suppression documents why the site cannot break the
// determinism contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// ModulePath is the import path of this module; the package scope
// lists below are rooted at it.
const ModulePath = "whereroam"

// DeterministicPackages lists the import-path prefixes of the
// packages bound by the determinism contract: everything on the
// generate → ingest → archive → replay → serve chain whose outputs
// are pinned bit-identical across worker counts and paths. The four
// determinism analyzers (maporder, rngpurity, stablesort, floatfold)
// run only on these.
var DeterministicPackages = []string{
	ModulePath + "/internal/dataset",
	ModulePath + "/internal/catalog",
	ModulePath + "/internal/analysis",
	ModulePath + "/internal/store",
	ModulePath + "/internal/serve",
	ModulePath + "/internal/experiments",
}

// ScopeExemptions documents why packages that sit next to the
// deterministic chain are deliberately outside the determinism scope.
// Every entry is a package import path mapped to the reason it may
// read wall clocks and hold unordered state. The table is the
// authoritative record — scope_test.go asserts each exempt package is
// genuinely out of scope and each reason is non-empty, so an
// accidental scope change surfaces as a test diff, not a silent lint
// gap.
var ScopeExemptions = map[string]string{
	ModulePath + "/internal/obs": "observability is measurement of the system, not part of it: " +
		"metrics, spans and profiles exist to read wall clocks and mutate shared counters, and " +
		"none of their state flows back into replayed or served bytes. Instrumented packages " +
		"stay in scope — they may only call nil-safe obs hooks, so every clock read lives here.",
}

// StrictGodocPackages lists the import-path prefixes whose exported
// API must be fully documented (the strict half of the documentation
// contract). This is the doclint_test.go strict set plus the
// pipeline-facing internal/benchfmt and internal/ingest.
var StrictGodocPackages = []string{
	ModulePath + "/internal/ingest",
	ModulePath + "/internal/pipeline",
	ModulePath + "/internal/probe",
	ModulePath + "/internal/catalog",
	ModulePath + "/internal/dataset",
	ModulePath + "/internal/experiments",
	ModulePath + "/internal/store",
	ModulePath + "/internal/serve",
	ModulePath + "/internal/benchfmt",
	ModulePath + "/internal/obs",
}

// InDeterministicScope reports whether the package with the given
// import path is bound by the determinism contract.
func InDeterministicScope(path string) bool { return hasPathPrefix(path, DeterministicPackages) }

// InStrictGodocScope reports whether the package with the given
// import path must document every exported declaration.
func InStrictGodocScope(path string) bool { return hasPathPrefix(path, StrictGodocPackages) }

func hasPathPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// An Analyzer is one named, self-contained rule of the contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //roamvet:<name>-ok annotations. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports the analyzer's findings on one package via
	// [Pass.Reportf]. Run may assume pass.Files is non-empty;
	// analyzers that need type information must tolerate a nil
	// pass.TypesInfo by returning early (parse-only drivers run the
	// syntactic analyzers alone).
	Run func(pass *Pass)
	// NeedsTypes marks analyzers that cannot run without a
	// type-checked package.
	NeedsTypes bool
}

// All is the full roamvet suite in reporting order.
var All = []*Analyzer{Maporder, RNGPurity, StableSort, FloatFold, Godoclint}

// AnalyzersFor returns the subset of the suite that applies to the
// package with the given import path: the four determinism analyzers
// on the deterministic packages, godoclint everywhere in the module.
func AnalyzersFor(path string) []*Analyzer {
	if InDeterministicScope(path) {
		return All
	}
	return []*Analyzer{Godoclint}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Unit is one package ready for analysis: parsed files plus, when
// the driver type-checked it, types for every expression. Test files
// are excluded by every driver — the contract binds production code.
type Unit struct {
	// Path is the package import path (e.g. whereroam/internal/store).
	Path string
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files holds the parsed non-test files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package, nil for parse-only drivers.
	Pkg *types.Package
	// Info carries type facts for Files, nil for parse-only drivers.
	Info *types.Info
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	// Pos is the resolved file position of the finding.
	Pos token.Position
	// Analyzer names the rule that fired.
	Analyzer string
	// Message describes the violation and how to resolve it.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's run over one unit.
type Pass struct {
	// Analyzer is the rule currently running.
	Analyzer *Analyzer
	// Unit is the package under analysis.
	*Unit

	annots map[annotKey]string // (file,line,analyzer) -> reason
	diags  *[]Diagnostic
}

type annotKey struct {
	file     string
	line     int
	analyzer string
}

// Reportf records a diagnostic at pos unless the flagged line (or the
// line immediately above it) carries a //roamvet:<analyzer>-ok
// annotation with a reason.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		if _, ok := p.annots[annotKey{position.Filename, line, p.Analyzer.Name}]; ok {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// annotRE matches a well-formed suppression: analyzer name, "-ok", a
// mandatory reason.
var annotRE = regexp.MustCompile(`^//roamvet:([a-z]+)-ok\s+(\S.*)$`)

// scanAnnotations indexes every //roamvet: comment in the unit and
// reports malformed ones (missing reason, unknown analyzer) as
// diagnostics of the pseudo-analyzer "roamvet".
func scanAnnotations(u *Unit, diags *[]Diagnostic) map[annotKey]string {
	annots := map[annotKey]string{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, "//roamvet:") {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				m := annotRE.FindStringSubmatch(text)
				if m == nil {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "roamvet",
						Message:  fmt.Sprintf("malformed roamvet annotation %q: want //roamvet:<analyzer>-ok <reason>", text),
					})
					continue
				}
				if ByName(m[1]) == nil {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "roamvet",
						Message:  fmt.Sprintf("roamvet annotation names unknown analyzer %q", m[1]),
					})
					continue
				}
				annots[annotKey{pos.Filename, pos.Line, m[1]}] = m[2]
			}
		}
	}
	return annots
}

// Run applies the given analyzers to one unit and returns the
// surviving diagnostics in position order. Annotation grammar is
// validated once per unit regardless of which analyzers run.
func Run(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	annots := scanAnnotations(u, &diags)
	for _, a := range analyzers {
		if a.NeedsTypes && u.Info == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Unit: u, annots: annots, diags: &diags}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// inspectStack walks the file like ast.Inspect but hands the callback
// the stack of ancestor nodes (outermost first, not including n).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// pkgFunc resolves a selector expression to (package path, function
// name) when it refers to a package-scope function or value of an
// imported package, using type info. Returns ok=false otherwise.
func pkgFunc(info *types.Info, e ast.Expr) (pkgPath, name string, ok bool) {
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isMapType reports whether the expression's type is (or points at) a
// map.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isTimeTime reports whether t is time.Time.
func isTimeTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Time"
}

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
