// Package linttest runs roamvet analyzers over fixture packages under
// testdata/src and checks their diagnostics against the fixtures'
// // want comments — the analysistest idiom of golang.org/x/tools,
// re-implemented on the standard library because this build
// environment is offline.
//
// A fixture line that must be flagged carries a trailing comment
// holding one quoted or backquoted regular expression per expected
// diagnostic on that line:
//
//	for k := range m { // want `range over map`
//
// Each expectation must match the message of exactly one diagnostic
// reported on its line. Diagnostics with no matching expectation, and
// expectations with no matching diagnostic, fail the test — so a
// fixture line without a want comment doubles as a negative case.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"whereroam/internal/lint"
	"whereroam/internal/lint/driver"
)

// DefaultPath is the import path fixture packages are analyzed under.
// It sits inside both the deterministic and strict-godoc scopes, so
// every analyzer treats the fixture as fully in contract.
const DefaultPath = lint.ModulePath + "/internal/dataset/linttestfixture"

// Run analyzes the fixture package testdata/src/<fixture> under
// [DefaultPath] with the given analyzers and compares diagnostics
// against the fixture's want comments.
func Run(t *testing.T, fixture string, analyzers ...*lint.Analyzer) {
	t.Helper()
	RunAs(t, DefaultPath, fixture, analyzers...)
}

// RunAs is Run with an explicit unit import path, for exercising
// scope-sensitive behavior (godoclint's strict set membership).
func RunAs(t *testing.T, unitPath, fixture string, analyzers ...*lint.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	files, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	exports, err := driver.Exports(".", fixtureImports(t, files)...)
	if err != nil {
		t.Fatalf("linttest: resolving fixture imports: %v", err)
	}
	fset := token.NewFileSet()
	u, err := driver.Check(unitPath, files, fset, driver.NewImporter(fset, nil, exports))
	if err != nil {
		t.Fatalf("linttest: type-checking %s: %v", dir, err)
	}
	diags := lint.Run(u, analyzers)
	wants, err := parseWants(files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	match(t, diags, wants)
}

// fixtureFiles lists the .go sources of a fixture directory.
func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return files, nil
}

// fixtureImports collects the distinct import paths of the fixture
// files (production and test alike — the parse is imports-only, so
// test files cost nothing even though drivers skip them).
func fixtureImports(t *testing.T, files []string) []string {
	t.Helper()
	seen := map[string]bool{}
	var paths []string
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	return paths
}

// A want is one expected diagnostic: a message pattern anchored to a
// file and line.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// wantRE finds the expectation list of a line; wantArgRE splits it
// into individual quoted or backquoted patterns.
var (
	wantRE    = regexp.MustCompile(`//\s*want\s+(.+)$`)
	wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// parseWants extracts every want expectation from the fixture sources.
// Test files carry no expectations by construction: drivers exclude
// them, so a want there could never be satisfied.
func parseWants(files []string) ([]*want, error) {
	var wants []*want
	for _, name := range files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllString(m[1], -1)
			if len(args) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", name, i+1)
			}
			for _, arg := range args {
				pat, err := strconv.Unquote(arg)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", name, i+1, arg, err)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
				}
				wants = append(wants, &want{file: name, line: i + 1, rx: rx})
			}
		}
	}
	return wants, nil
}

// match pairs each diagnostic with one expectation on its line and
// reports both unexpected diagnostics and unmatched expectations.
func match(t *testing.T, diags []lint.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}
