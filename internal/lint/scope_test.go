package lint_test

import (
	"strings"
	"testing"

	"whereroam/internal/lint"
	"whereroam/internal/lint/linttest"
)

func TestAnalyzersFor(t *testing.T) {
	cases := []struct {
		path string
		want int
	}{
		{lint.ModulePath + "/internal/dataset", len(lint.All)},
		{lint.ModulePath + "/internal/serve", len(lint.All)},
		{lint.ModulePath + "/internal/rng", 1},
		{lint.ModulePath + "/internal/obs", 1},
		{lint.ModulePath + "/cmd/roamvet", 1},
		{lint.ModulePath, 1},
	}
	for _, c := range cases {
		if got := len(lint.AnalyzersFor(c.path)); got != c.want {
			t.Errorf("AnalyzersFor(%q) returned %d analyzers, want %d", c.path, got, c.want)
		}
	}
}

func TestScopePrefixMatching(t *testing.T) {
	if !lint.InDeterministicScope(lint.ModulePath + "/internal/dataset") {
		t.Error("internal/dataset must be in the deterministic scope")
	}
	if !lint.InDeterministicScope(lint.ModulePath + "/internal/dataset/sub") {
		t.Error("subpackages of a deterministic package inherit the scope")
	}
	if lint.InDeterministicScope(lint.ModulePath + "/internal/datasetx") {
		t.Error("prefix matching must respect path-segment boundaries")
	}
	if !lint.InStrictGodocScope(lint.ModulePath + "/internal/benchfmt") {
		t.Error("internal/benchfmt joined the strict-godoc set in this change")
	}
	if !lint.InStrictGodocScope(lint.ModulePath + "/internal/ingest") {
		t.Error("internal/ingest is in the strict-godoc set")
	}
	if lint.InStrictGodocScope(lint.ModulePath + "/internal/rng") {
		t.Error("internal/rng is not in the strict-godoc set")
	}
	if !lint.InStrictGodocScope(lint.ModulePath + "/internal/obs") {
		t.Error("internal/obs joined the strict-godoc set in this change")
	}
}

// TestScopeExemptions pins the exemption table's invariants: every
// exempt package is genuinely outside the determinism scope (an entry
// for an in-scope package would be a lie — the analyzers would still
// run), and every exemption carries a substantive reason.
func TestScopeExemptions(t *testing.T) {
	if len(lint.ScopeExemptions) == 0 {
		t.Fatal("ScopeExemptions must document at least internal/obs")
	}
	for path, reason := range lint.ScopeExemptions {
		if lint.InDeterministicScope(path) {
			t.Errorf("%s is listed exempt but is inside the deterministic scope", path)
		}
		if len(strings.TrimSpace(reason)) < 20 {
			t.Errorf("%s: exemption reason is empty or perfunctory: %q", path, reason)
		}
	}
	if _, ok := lint.ScopeExemptions[lint.ModulePath+"/internal/obs"]; !ok {
		t.Error("internal/obs must appear in the exemption table")
	}
}

// TestScopeBoundaryFixtures proves the exemption end to end with twin
// fixtures: the identical time.Now read is clean when analyzed as
// internal/obs code (only godoclint applies) and flagged by rngpurity
// when analyzed as internal/serve code.
func TestScopeBoundaryFixtures(t *testing.T) {
	obsPath := lint.ModulePath + "/internal/obs/linttestfixture"
	linttest.RunAs(t, obsPath, "obsclock", lint.AnalyzersFor(obsPath)...)

	servePath := lint.ModulePath + "/internal/serve/linttestfixture"
	linttest.RunAs(t, servePath, "serveclock", lint.AnalyzersFor(servePath)...)
}

func TestByName(t *testing.T) {
	for _, a := range lint.All {
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName of an unknown name must return nil")
	}
}
