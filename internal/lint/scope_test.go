package lint_test

import (
	"testing"

	"whereroam/internal/lint"
)

func TestAnalyzersFor(t *testing.T) {
	cases := []struct {
		path string
		want int
	}{
		{lint.ModulePath + "/internal/dataset", len(lint.All)},
		{lint.ModulePath + "/internal/serve", len(lint.All)},
		{lint.ModulePath + "/internal/rng", 1},
		{lint.ModulePath + "/cmd/roamvet", 1},
		{lint.ModulePath, 1},
	}
	for _, c := range cases {
		if got := len(lint.AnalyzersFor(c.path)); got != c.want {
			t.Errorf("AnalyzersFor(%q) returned %d analyzers, want %d", c.path, got, c.want)
		}
	}
}

func TestScopePrefixMatching(t *testing.T) {
	if !lint.InDeterministicScope(lint.ModulePath + "/internal/dataset") {
		t.Error("internal/dataset must be in the deterministic scope")
	}
	if !lint.InDeterministicScope(lint.ModulePath + "/internal/dataset/sub") {
		t.Error("subpackages of a deterministic package inherit the scope")
	}
	if lint.InDeterministicScope(lint.ModulePath + "/internal/datasetx") {
		t.Error("prefix matching must respect path-segment boundaries")
	}
	if !lint.InStrictGodocScope(lint.ModulePath + "/internal/benchfmt") {
		t.Error("internal/benchfmt joined the strict-godoc set in this change")
	}
	if !lint.InStrictGodocScope(lint.ModulePath + "/internal/ingest") {
		t.Error("internal/ingest is in the strict-godoc set")
	}
	if lint.InStrictGodocScope(lint.ModulePath + "/internal/rng") {
		t.Error("internal/rng is not in the strict-godoc set")
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All {
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName of an unknown name must return nil")
	}
}
