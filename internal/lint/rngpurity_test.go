package lint_test

import (
	"testing"

	"whereroam/internal/lint"
	"whereroam/internal/lint/linttest"
)

func TestRNGPurity(t *testing.T) {
	linttest.Run(t, "rngpurity", lint.RNGPurity)
}
