package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `range` statements over maps in the deterministic
// packages. Go's map iteration order is deliberately randomized, so
// any map range whose effect depends on visit order breaks the
// bit-identical contract (the PR 3 unstable-sort bug entered through
// exactly such a loop feeding output without an order pin).
//
// Two shapes are recognized as safe without annotation:
//
//   - collect-then-sort: the loop only writes local collector
//     variables, and a sort.* / slices.Sort* call over one of those
//     collectors appears later in the same function (the canonical
//     keys-slice idiom);
//   - commutative body: every statement in the loop body is an
//     order-independent effect — writes keyed exactly by the ranged
//     key, integer/boolean accumulation, idempotent constant map
//     inserts, min/max folds, body-local scratch — as defined by
//     [commutativeBody].
//
// Anything else needs either a real fix or a
// //roamvet:maporder-ok <reason> annotation.
var Maporder = &Analyzer{
	Name:       "maporder",
	Doc:        "flags range over a map whose effect can depend on iteration order",
	NeedsTypes: true,
	Run:        runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(pass.Info, rs.X) {
				return true
			}
			if commutativeBody(pass.Info, rs) {
				return true
			}
			if feedsSort(pass.Info, rs, stack) {
				return true
			}
			pass.Reportf(rs.For, "range over map: iteration order is nondeterministic; collect and sort, restrict the body to order-independent effects, or annotate //roamvet:maporder-ok <reason>")
			return true
		})
	}
}

// feedsSort reports whether every variable the loop body writes is a
// local collector and at least one of them is passed to a sort.* or
// slices.Sort* call after the loop, inside the same enclosing
// function — the collect-then-sort idiom.
func feedsSort(info *types.Info, rs *ast.RangeStmt, stack []ast.Node) bool {
	written := writtenObjects(info, rs)
	if len(written) == 0 {
		return false
	}
	fn := enclosingFunc(stack)
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		pkg, name, ok := pkgFunc(info, call.Fun)
		if !ok || !isSortCall(pkg, name) {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObject(info, arg); obj != nil && written[obj] {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isSortCall(pkg, name string) bool {
	switch pkg {
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// writtenObjects collects the objects assigned, compound-assigned,
// appended to, or incremented in the loop body — the candidate
// collector variables. It returns nil if the body writes something it
// cannot attribute to a named object (so feedsSort stays
// conservative).
func writtenObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	written := map[types.Object]bool{}
	attributable := true
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if obj := rootObject(info, lhs); obj != nil {
					written[obj] = true
				} else if !isBlank(lhs) {
					attributable = false
				}
			}
		case *ast.IncDecStmt:
			if obj := rootObject(info, s.X); obj != nil {
				written[obj] = true
			} else {
				attributable = false
			}
		}
		return true
	})
	if !attributable {
		return nil
	}
	return written
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// rootObject resolves an expression to the object of the variable at
// its root: x, x[i], x.f, *x, &x and combinations thereof all resolve
// to x. Returns nil for anything else (calls, literals).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.ObjectOf(x); obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					return obj
				}
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
