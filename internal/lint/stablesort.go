package lint

import (
	"go/ast"
	"go/token"
	"regexp"
)

// StableSort flags sort.Slice (and slices.SortFunc) calls whose less
// function compares timestamps. Timestamp keys tie — two records in
// the same nanosecond, two events on the same day — and sort.Slice is
// explicitly unstable, so the relative order of tied elements depends
// on the input permutation, which in this repository depends on the
// worker count. That was exactly the PR 3 bug: a timestamp sort over
// shard-merged transactions reordered ties across worker counts.
// Tie-prone sorts must either use sort.SliceStable (preserving the
// pinned upstream order) or extend the key to a total order, in which
// case the site carries //roamvet:stablesort-ok <reason>.
var StableSort = &Analyzer{
	Name:       "stablesort",
	Doc:        "flags unstable sorts whose comparison key is a timestamp",
	NeedsTypes: true,
	Run:        runStableSort,
}

// timeishName matches selector names that conventionally carry
// integer timestamps (Time, Timestamp, UnixNanos, ...).
var timeishName = regexp.MustCompile(`(?i)(time|stamp|nanos)`)

func runStableSort(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(pass.Info, call.Fun)
			if !ok {
				return true
			}
			var less ast.Expr
			switch {
			case pkg == "sort" && name == "Slice" && len(call.Args) == 2:
				less = call.Args[1]
			case pkg == "slices" && name == "SortFunc" && len(call.Args) == 2:
				less = call.Args[1]
			default:
				return true
			}
			fl, ok := less.(*ast.FuncLit)
			if !ok {
				return true
			}
			if comparesTimestamps(pass, fl) {
				pass.Reportf(call.Pos(), "unstable %s.%s with a timestamp comparison key: ties reorder with the input permutation; use sort.SliceStable or a total-order key, or annotate //roamvet:stablesort-ok <reason>", pkg, name)
			}
			return true
		})
	}
}

// comparesTimestamps reports whether the less function's body
// compares time.Time values (via <, >, Before or After) or orders by
// a field whose name is timestamp-like.
func comparesTimestamps(pass *Pass, fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				for _, op := range []ast.Expr{e.X, e.Y} {
					if t := pass.Info.TypeOf(op); t != nil && isTimeTime(t) {
						found = true
					}
					if sel, ok := op.(*ast.SelectorExpr); ok && timeishName.MatchString(sel.Sel.Name) {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Before" || sel.Sel.Name == "After") {
				if t := pass.Info.TypeOf(sel.X); t != nil && isTimeTime(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
