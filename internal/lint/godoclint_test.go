package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"whereroam/internal/lint"
	"whereroam/internal/lint/linttest"
)

func TestGodoclintStrict(t *testing.T) {
	linttest.Run(t, "godoclint", lint.Godoclint)
}

func TestGodoclintMissingPackageDoc(t *testing.T) {
	linttest.Run(t, "godoclintnodoc", lint.Godoclint)
}

// TestGodoclintLaxScope analyzes a fixture under an import path
// outside the strict-godoc set: only the package-doc rule applies, so
// the fixture's undocumented export must not be reported.
func TestGodoclintLaxScope(t *testing.T) {
	linttest.RunAs(t, lint.ModulePath+"/internal/rng", "godoclintlax", lint.Godoclint)
}

// TestGodoclintValueSpecs covers the const/var rules with a synthetic
// source file: a trailing line comment on a spec counts as its
// documentation (the const-block idiom), so these cases cannot be
// written as // want fixtures — the expectation comment itself would
// document the spec.
func TestGodoclintValueSpecs(t *testing.T) {
	const src = `// Package p is a synthetic godoclint fixture.
package p

const Bare = 1

var Loose = 2

// Grouped documents the block, covering its specs.
const (
	A = 1
	B = 2
)

const Trailing = 3 // a trailing comment documents the spec
`
	diags := runGodoclintSrc(t, src)
	want := []string{
		"exported const Bare has no doc comment",
		"exported var Loose has no doc comment",
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, len(want))
	}
	for i, w := range want {
		if diags[i].Message != w {
			t.Errorf("diagnostic %d = %q, want %q", i, diags[i].Message, w)
		}
	}
}

// runGodoclintSrc runs godoclint over one synthetic file under a
// strict-godoc import path.
func runGodoclintSrc(t *testing.T, src string) []lint.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	path := linttest.DefaultPath
	if !lint.InStrictGodocScope(path) {
		t.Fatalf("%s is not in the strict-godoc scope", path)
	}
	u := &lint.Unit{Path: path, Fset: fset, Files: []*ast.File{f}}
	return lint.Run(u, []*lint.Analyzer{lint.Godoclint})
}
