package lint

import (
	"go/ast"
)

// RNGPurity forbids impure randomness and wall clocks in the
// deterministic packages. The contract requires every random draw to
// flow through internal/rng substreams (splittable, label-addressed,
// seed-derived) and every timestamp to flow through configuration, so
// that any two runs with the same seed are bit-identical. Three
// classes of call break that:
//
//   - math/rand (and math/rand/v2) package-level functions, which
//     draw from global, cross-goroutine-shared state;
//   - rand.New / rand.NewSource / rand.NewPCG / rand.NewChaCha8,
//     which mint generators outside the internal/rng substream tree
//     (their sequences are not label-addressed, so adding a consumer
//     perturbs its neighbors);
//   - time.Now, a wall clock.
//
// Sites that are genuinely outside the reproducibility boundary (load
// generators measuring real latency, for example) carry a
// //roamvet:rngpurity-ok <reason> annotation.
var RNGPurity = &Analyzer{
	Name:       "rngpurity",
	Doc:        "forbids global math/rand, ad-hoc generator construction and time.Now in deterministic packages",
	NeedsTypes: true,
	Run:        runRNGPurity,
}

// randConstructors are the generator-minting entry points of both
// math/rand generations; deterministic code must use internal/rng.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runRNGPurity(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(pass.Info, sel)
			if !ok {
				return true
			}
			switch pkg {
			case "math/rand", "math/rand/v2":
				if randConstructors[name] {
					pass.Reportf(sel.Pos(), "%s.%s mints a generator outside the internal/rng substream tree; derive randomness via rng.Source.Split instead, or annotate //roamvet:rngpurity-ok <reason>", pkg, name)
				} else {
					pass.Reportf(sel.Pos(), "%s.%s draws from global shared state; all randomness in deterministic packages must flow through internal/rng substreams", pkg, name)
				}
			case "time":
				if name == "Now" {
					pass.Reportf(sel.Pos(), "time.Now is a wall clock; deterministic packages must take times from configuration, or annotate //roamvet:rngpurity-ok <reason>")
				}
			}
			return true
		})
	}
}
