// Package godoclint is a roamvet fixture exercising the godoclint
// analyzer in strict mode: undocumented exported declarations are
// flagged, documented and unexported ones are not.
package godoclint

// Documented carries a doc comment.
type Documented struct{}

type Undocumented struct{} // want `exported type Undocumented has no doc comment`

// DoThing carries a doc comment.
func DoThing() {}

func DoOther() {} // want `exported func DoOther has no doc comment`

// Method carries a doc comment.
func (Documented) Method() {}

func (Documented) Bare() {} // want `exported func Bare has no doc comment`

type hidden struct{}

// Methods on unexported receivers are not API surface.
func (hidden) Exported() {}

func unexported() {}
