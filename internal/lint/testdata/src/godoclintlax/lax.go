// Package godoclintlax is a roamvet fixture analyzed under an import
// path outside the strict-godoc set: the package doc rule applies,
// the exported-declaration rule does not, so the undocumented export
// below must produce no diagnostic.
package godoclintlax

func UndocumentedButOutsideStrictScope() {}
