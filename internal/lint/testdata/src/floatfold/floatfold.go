// Package floatfold is a roamvet fixture exercising the floatfold
// analyzer: float accumulation inside map ranges and Merge/fold
// bodies, the pinned-order and integer alternatives, and annotation
// suppression.
package floatfold

func sumMapRange(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v // want `float accumulation inside a range over a map`
	}
	return t
}

func selfAssignForm(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t = t + v // want `float accumulation inside a range over a map`
	}
	return t
}

func sumSliceRange(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += v
	}
	return t
}

func intMapRange(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

type acc struct {
	total float64
	n     int
}

func (a *acc) Merge(o *acc) {
	a.total += o.total // want `float accumulation inside Merge`
	a.n += o.n
}

func (a *acc) add(v float64) {
	a.total += v
}

func annotated(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		//roamvet:floatfold-ok fixture: suppression test, result is tolerance-checked
		t += v
	}
	return t
}
