// Package obsclock is a roamvet fixture proving the scope exemption
// for internal/obs: the same time.Now call that rngpurity flags in a
// deterministic package (see the serveclock fixture) passes clean when
// the unit is analyzed under the internal/obs import path, because obs
// is outside the determinism scope by design — it owns the module's
// wall-clock reads. No want comments on purpose: any diagnostic here
// fails the test.
package obsclock

import "time"

// Stamp reads the wall clock, the thing obs exists to do.
func Stamp() time.Time {
	return time.Now()
}
