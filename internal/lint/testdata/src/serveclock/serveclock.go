// Package serveclock is the in-scope twin of the obsclock fixture:
// byte-for-byte the same wall-clock read, but analyzed under the
// internal/serve import path, where the determinism contract applies
// and rngpurity must flag it. Together the two fixtures pin the scope
// boundary from both sides.
package serveclock

import "time"

// Stamp reads the wall clock, which deterministic packages must not.
func Stamp() time.Time {
	return time.Now() // want `time\.Now is a wall clock`
}
