// Package stablesort is a roamvet fixture exercising the stablesort
// analyzer: unstable sorts over timestamp keys, the stable and
// total-order-key alternatives, and annotation suppression.
package stablesort

import (
	"slices"
	"sort"
	"time"
)

type event struct {
	At   time.Time
	Name string
}

type sample struct {
	StampNanos int64
	v          float64
}

func unstableTimeSort(evs []event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) }) // want `unstable sort\.Slice with a timestamp comparison key`
}

func unstableStampSort(ss []sample) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].StampNanos < ss[j].StampNanos }) // want `unstable sort\.Slice with a timestamp comparison key`
}

func unstableSlicesSort(evs []event) {
	slices.SortFunc(evs, func(a, b event) int { // want `unstable slices\.SortFunc with a timestamp comparison key`
		if a.At.Before(b.At) {
			return -1
		}
		return 1
	})
}

func stableTimeSort(evs []event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
}

func totalOrderKey(evs []event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Name < evs[j].Name })
}

func annotated(evs []event) {
	//roamvet:stablesort-ok fixture: suppression test, event times are unique by construction
	sort.Slice(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
}
