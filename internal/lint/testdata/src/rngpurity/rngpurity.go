// Package rngpurity is a roamvet fixture exercising the rngpurity
// analyzer: global math/rand state, ad-hoc generator construction,
// wall clocks, and annotation suppression.
package rngpurity

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now is a wall clock`
}

func freshGenerator(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // want `math/rand\.New mints a generator` `math/rand\.NewSource mints a generator`
	return r.Intn(10)
}

func globalDraw() int {
	return rand.Intn(10) // want `math/rand\.Intn draws from global shared state`
}

func configClock(now time.Time) time.Time {
	return now.Add(time.Hour)
}

func annotated() time.Time {
	//roamvet:rngpurity-ok fixture: suppression test, operational timestamp
	return time.Now()
}
