package godoclintnodoc // want `package godoclintnodoc has no package-level doc comment`

// Exported carries a doc comment, but the package clause does not.
func Exported() {}
