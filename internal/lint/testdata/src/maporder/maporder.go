// Package maporder is a roamvet fixture exercising the maporder
// analyzer: flagged map ranges, the collect-then-sort and
// commutative-body exemptions, and annotation suppression.
package maporder

import "sort"

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map`
		out = append(out, k)
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func collectThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func keyedFold(dst, src map[string]int) {
	for k, v := range src {
		dst[k] += v
	}
}

func setInsert(dst map[string]bool, src map[string]int) {
	for k := range src {
		dst[k] = true
	}
}

func counterSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func maxFold(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func deleteByKey(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func earlyBreak(m map[string]int) bool {
	found := false
	for _, v := range m { // want `range over map`
		if v > 10 {
			found = true
			break
		}
	}
	return found
}

func stringConcat(m map[string]int) string {
	s := ""
	for k := range m { // want `range over map`
		s += k
	}
	return s
}

func annotated(m map[string]int) []string {
	var out []string
	//roamvet:maporder-ok fixture: suppression test, order is irrelevant here
	for k := range m {
		out = append(out, k)
	}
	return out
}
