package maporder

// Test files are outside the determinism contract: this unsorted map
// range must NOT be reported (no want comment — an unexpected
// diagnostic fails the fixture run).
func testOnlyRange(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
