package lint_test

import (
	"testing"

	"whereroam/internal/lint"
	"whereroam/internal/lint/linttest"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, "maporder", lint.Maporder)
}
