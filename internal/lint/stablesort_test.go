package lint_test

import (
	"testing"

	"whereroam/internal/lint"
	"whereroam/internal/lint/linttest"
)

func TestStableSort(t *testing.T) {
	linttest.Run(t, "stablesort", lint.StableSort)
}
