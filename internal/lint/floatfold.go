package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// FloatFold flags floating-point accumulation (+= / -=, or x = x + y)
// in contexts where the fold order is not pinned: inside a range over
// a map, or inside a Merge/fold function. Float addition is not
// associative, so folding shard or map-iteration deliveries in
// arrival order yields different low bits run to run — the PR 4 bug
// class (fleet-order float accumulation in fed-validation). Integer
// accumulation is exact and commutative, which is why the catalog
// aggregates call duration as integer nanoseconds; float folds must
// either do the same, run over a pinned order, or justify themselves
// with //roamvet:floatfold-ok <reason>.
var FloatFold = &Analyzer{
	Name:       "floatfold",
	Doc:        "flags float accumulation inside map ranges and Merge/fold bodies",
	NeedsTypes: true,
	Run:        runFloatFold,
}

func runFloatFold(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			var target ast.Expr
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				target = as.Lhs[0]
			case token.ASSIGN:
				// x = x + y / x = y + x with a float x.
				if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				be, ok := as.Rhs[0].(*ast.BinaryExpr)
				if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
					return true
				}
				lobj := rootObject(pass.Info, as.Lhs[0])
				if lobj == nil || (rootObject(pass.Info, be.X) != lobj && rootObject(pass.Info, be.Y) != lobj) {
					return true
				}
				target = as.Lhs[0]
			default:
				return true
			}
			t := pass.Info.TypeOf(target)
			if t == nil || !isFloat(t) {
				return true
			}
			where, ok := unpinnedFoldContext(pass, stack)
			if !ok {
				return true
			}
			pass.Reportf(as.Pos(), "float accumulation %s: float addition is not associative, so the result depends on fold order; accumulate integers, pin the order, or annotate //roamvet:floatfold-ok <reason>", where)
			return true
		})
	}
}

// unpinnedFoldContext reports whether the statement at the top of the
// stack sits in a context whose visit order is not pinned: a range
// over a map, or a function whose name marks it as a merge/fold
// combinator (callers feed those in shard-arrival order).
func unpinnedFoldContext(pass *Pass, stack []ast.Node) (string, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.RangeStmt:
			if isMapType(pass.Info, s.X) {
				return "inside a range over a map", true
			}
		case *ast.FuncDecl:
			if name := strings.ToLower(s.Name.Name); strings.Contains(name, "merge") || strings.Contains(name, "fold") {
				return "inside " + s.Name.Name, true
			}
			return "", false
		}
	}
	return "", false
}
