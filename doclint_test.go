// Doc lint: every package in the module must carry a package-level
// doc comment, and the pipeline-facing packages must document every
// exported declaration. The rules themselves live in the godoclint
// analyzer of internal/lint — where roamvet and `go vet -vettool`
// also enforce them — and this test is a thin in-process wrapper so
// that `go test` alone still walks the documentation contract. The
// strict-package set is lint.StrictGodocPackages.
package whereroam

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"whereroam/internal/lint"
)

// packageDirs returns every directory under the module root that
// holds non-test Go files.
func packageDirs(t *testing.T) []string {
	t.Helper()
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "docs") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.ToSlash(filepath.Dir(path))
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// lintDir parses one package directory (production files only —
// godoclint is syntactic, so no type-check is needed) and returns the
// godoclint diagnostics under the directory's module import path.
func lintDir(t *testing.T, dir string) []lint.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	path := lint.ModulePath
	if dir != "." {
		path = lint.ModulePath + "/" + filepath.ToSlash(dir)
	}
	var diags []lint.Diagnostic
	for _, name := range sortedKeys(pkgs) {
		pkg := pkgs[name]
		var files []*ast.File
		for _, fname := range sortedKeys(pkg.Files) {
			files = append(files, pkg.Files[fname])
		}
		u := &lint.Unit{Path: path, Fset: fset, Files: files}
		diags = append(diags, lint.Run(u, []*lint.Analyzer{lint.Godoclint})...)
	}
	return diags
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestPackagesHaveDocComments walks every package and requires a
// `// Package ...` (or `// Command ...`) doc comment on at least one
// file.
func TestPackagesHaveDocComments(t *testing.T) {
	for _, dir := range packageDirs(t) {
		for _, d := range lintDir(t, dir) {
			if strings.Contains(d.Message, "package-level doc comment") {
				t.Error(d)
			}
		}
	}
}

// TestExportedAPIDocumented requires godoc on every exported
// top-level declaration — functions, methods on exported receivers,
// types, and var/const specs — in the strict-godoc packages.
func TestExportedAPIDocumented(t *testing.T) {
	for _, dir := range packageDirs(t) {
		for _, d := range lintDir(t, dir) {
			if !strings.Contains(d.Message, "package-level doc comment") {
				t.Error(d)
			}
		}
	}
}
