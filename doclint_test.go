// Doc lint: every package in the module must carry a package-level
// doc comment, and the pipeline-facing packages — the ones external
// code composes streaming ingestion from — must document every
// exported declaration. This is the enforcement half of the
// documentation contract in docs/ARCHITECTURE.md: prose that a test
// does not walk rots.
package whereroam

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// strictGodoc lists the packages whose exported API must be fully
// documented: the streaming ingest subsystem and the layers it is
// built from, plus the federation surface (the dataset generators
// and the session layer applications program against).
var strictGodoc = map[string]bool{
	"internal/ingest":      true,
	"internal/pipeline":    true,
	"internal/probe":       true,
	"internal/catalog":     true,
	"internal/dataset":     true,
	"internal/experiments": true,
	"internal/store":       true,
	"internal/serve":       true,
}

// packageDirs returns every directory under the module root that
// holds non-test Go files.
func packageDirs(t *testing.T) []string {
	t.Helper()
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "docs") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.ToSlash(filepath.Dir(path))
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

func parseDir(t *testing.T, dir string) map[string]*ast.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	return pkgs
}

// TestPackagesHaveDocComments walks every package and requires a
// `// Package ...` (or `// Command ...`) doc comment on at least one
// file.
func TestPackagesHaveDocComments(t *testing.T) {
	for _, dir := range packageDirs(t) {
		for name, pkg := range parseDir(t, dir) {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package-level doc comment", name, dir)
			}
		}
	}
}

// TestExportedAPIDocumented requires godoc on every exported
// top-level declaration — functions, methods on exported receivers,
// types, and var/const specs — in the strict-godoc packages.
func TestExportedAPIDocumented(t *testing.T) {
	for dir := range strictGodoc {
		for _, pkg := range parseDir(t, dir) {
			for file, f := range pkg.Files {
				for _, decl := range f.Decls {
					checkDeclDocumented(t, file, decl)
				}
			}
		}
	}
}

func checkDeclDocumented(t *testing.T, file string, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		if d.Doc == nil {
			t.Errorf("%s: exported func %s has no doc comment", file, d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
			return
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					t.Errorf("%s: exported type %s has no doc comment", file, s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					// A doc comment on the grouped decl covers its
					// specs (the const-block idiom).
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						t.Errorf("%s: exported %s %s has no doc comment", file, d.Tok, n.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver base type is
// exported (methods on unexported types are not part of the API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
