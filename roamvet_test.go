// The roamvet clean-tree gate: the full analyzer suite must run
// clean over the real module, in process — the same invariant CI
// enforces through `go vet -vettool=roamvet ./...`. Every surviving
// map range, float fold, sort and clock in the deterministic packages
// is therefore either mechanically safe or carries an annotated
// justification.
package whereroam

import (
	"testing"

	"whereroam/internal/lint"
	"whereroam/internal/lint/driver"
)

func TestRoamvetCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	units, err := driver.Load(".", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("driver.Load returned no packages")
	}
	deterministic := 0
	for _, u := range units {
		if lint.InDeterministicScope(u.Path) {
			deterministic++
		}
		for _, d := range lint.Run(u, lint.AnalyzersFor(u.Path)) {
			t.Error(d)
		}
	}
	if want := len(lint.DeterministicPackages); deterministic < want {
		t.Errorf("only %d deterministic packages loaded, want at least %d — scope drift?", deterministic, want)
	}
}
