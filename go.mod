module whereroam

go 1.24
