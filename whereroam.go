// Package whereroam reproduces the measurement system of "Where
// Things Roam: Uncovering Cellular IoT/M2M Connectivity" (IMC 2020):
// the roaming-label and M2M-classification pipeline a visited mobile
// operator runs over its devices-catalog, the passive-measurement
// substrate that builds the catalog, and — because the paper's
// operator datasets are NDA-bound — a deterministic cellular roaming
// simulator that regenerates both datasets at configurable scale.
//
// The package is a facade: it re-exports the stable API of the
// internal packages so that applications interact with one import.
//
//	sess := whereroam.NewSession(1, 1.0)
//	mno := sess.MNO()
//	sums := mno.Catalog.Summaries(mno.GSMA)
//	results := whereroam.NewClassifier().Classify(sums)
//
// The experiment runners regenerate every table and figure of the
// paper's evaluation; see cmd/roamrepro and EXPERIMENTS.md.
package whereroam

import (
	"whereroam/internal/analysis"
	"whereroam/internal/apn"
	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/devices"
	"whereroam/internal/experiments"
	"whereroam/internal/gsma"
	"whereroam/internal/identity"
	"whereroam/internal/ingest"
	"whereroam/internal/mccmnc"
	"whereroam/internal/netsim"
	"whereroam/internal/obs"
	"whereroam/internal/pipeline"
	"whereroam/internal/probe"
	"whereroam/internal/serve"
	"whereroam/internal/settlement"
	"whereroam/internal/signaling"
	"whereroam/internal/store"
)

// Identity plane.
type (
	// PLMN identifies a mobile network (MCC + MNC).
	PLMN = mccmnc.PLMN
	// IMSI is a subscriber identity.
	IMSI = identity.IMSI
	// IMEI is an equipment identity with Luhn check digit.
	IMEI = identity.IMEI
	// TAC is the 8-digit type allocation code prefix of an IMEI.
	TAC = identity.TAC
	// DeviceID is the one-way-hashed device identifier used in traces.
	DeviceID = identity.DeviceID
	// APN is a parsed access point name.
	APN = apn.APN
)

// ParsePLMN parses "21407" / "334020"-style concatenated codes.
func ParsePLMN(s string) (PLMN, error) { return mccmnc.Parse(s) }

// ParseAPN parses an access point name, with or without the operator
// identifier suffix.
func ParseAPN(s string) (APN, error) { return apn.Parse(s) }

// Measurement plane.
type (
	// Transaction is one control-plane signaling record (§3.1 schema).
	Transaction = signaling.Transaction
	// DailyRecord is one device-day of the devices-catalog (§4.1).
	DailyRecord = catalog.DailyRecord
	// Catalog is a full observation window of daily records.
	Catalog = catalog.Catalog
	// Summary is a device aggregated across the window.
	Summary = catalog.Summary
	// GSMADB is the TAC device database.
	GSMADB = gsma.DB
)

// The paper's contribution: labels and classification.
type (
	// Label is a roaming label <X:Y> (§4.2).
	Label = core.Label
	// Labeler assigns roaming labels for one observing MNO.
	Labeler = core.Labeler
	// Classifier is the multi-step M2M classifier (§4.3).
	Classifier = core.Classifier
	// Class is the classifier output (smart/feat/m2m/m2m-maybe).
	Class = core.Class
	// ClassResult is one device's classification with its evidence.
	ClassResult = core.Result
	// Validation holds classifier-vs-ground-truth metrics.
	Validation = core.Validation
)

// Classifier output classes.
const (
	ClassSmart    = core.ClassSmart
	ClassFeat     = core.ClassFeat
	ClassM2M      = core.ClassM2M
	ClassM2MMaybe = core.ClassM2MMaybe
)

// NewClassifier returns the standard classification pipeline.
func NewClassifier() *Classifier { return core.NewClassifier() }

// NewLabeler returns a labeler for the host MNO and its MVNOs.
func NewLabeler(host PLMN, mvnos ...PLMN) *Labeler { return core.NewLabeler(host, mvnos...) }

// Validate compares classification results against simulator ground
// truth.
func Validate(results []ClassResult, truth map[DeviceID]devices.Class) (*Validation, error) {
	return core.Validate(results, truth)
}

// Breakdown counts classification results per class.
func Breakdown(results []ClassResult) map[Class]int { return core.Breakdown(results) }

// Simulation plane.
type (
	// M2MConfig parameterizes the §3 platform dataset generator.
	M2MConfig = dataset.M2MConfig
	// MNOConfig parameterizes the §4 visited-MNO dataset generator.
	MNOConfig = dataset.MNOConfig
	// SMIPConfig parameterizes the §7 smart-meter dataset generator.
	SMIPConfig = dataset.SMIPConfig
	// M2MDataset is the platform signaling dataset.
	M2MDataset = dataset.M2MDataset
	// MNODataset is the visited-MNO dataset.
	MNODataset = dataset.MNODataset
	// SMIPDataset is the smart-meter dataset.
	SMIPDataset = dataset.SMIPDataset
	// World is the operator/agreement topology.
	World = netsim.World
	// DeviceClass is the generator-side ground-truth vertical.
	DeviceClass = devices.Class
	// FederationConfig parameterizes the multi-operator generator.
	FederationConfig = dataset.FederationConfig
	// FederationDataset is the multi-operator dataset: shared world,
	// GSMA catalog and roamer fleet plus one site per visited MNO.
	FederationDataset = dataset.FederationDataset
	// FederationSite is one visited operator's slice of a federation
	// dataset.
	FederationSite = dataset.FederationSite
	// FederationM2M is the federated §3/§6 transaction plane: the
	// shared fleet's signaling stream, consistent with the presence
	// schedule.
	FederationM2M = dataset.FederationM2M
	// FederationSMIP is the federated §7 smart-meter plane: one
	// meters-only dataset per site over the shared fleet's meters.
	FederationSMIP = dataset.FederationSMIP
)

// Dataset generators with the paper's default shapes.
var (
	DefaultM2MConfig  = dataset.DefaultM2MConfig
	DefaultMNOConfig  = dataset.DefaultMNOConfig
	DefaultSMIPConfig = dataset.DefaultSMIPConfig
	GenerateM2M       = dataset.GenerateM2M
	GenerateMNO       = dataset.GenerateMNO
	GenerateSMIP      = dataset.GenerateSMIP
	SynthesizeGSMA    = gsma.Synthesize
	NewWorld          = netsim.NewWorld
	DefaultWorld      = netsim.DefaultConfig
	// DefaultFederationConfig is the standard three-site federation
	// shape; GenerateFederation builds the multi-operator dataset
	// from it.
	DefaultFederationConfig = dataset.DefaultFederationConfig
	// DefaultFederationHosts lists the standard three visited MNOs.
	DefaultFederationHosts = dataset.DefaultFederationHosts
	// GenerateFederation synthesizes one shared world and roamer
	// fleet observed by N visited operators.
	GenerateFederation = dataset.GenerateFederation
	// GenerateFederationM2M derives the §3/§6 signaling view of an
	// already-built federation: every transaction follows the shared
	// per-day presence schedule.
	GenerateFederationM2M = dataset.GenerateFederationM2M
	// StreamFederationM2M is GenerateFederationM2M's bounded-memory
	// twin: the stream goes to a sink in deterministic order.
	StreamFederationM2M = dataset.StreamFederationM2M
	// GenerateFederationSMIP derives the per-site §7 smart-meter
	// views of an already-built federation.
	GenerateFederationSMIP = dataset.GenerateFederationSMIP
)

// Streaming ingestion plane: bounded-memory catalog builds over live
// record streams (see internal/ingest and docs/ARCHITECTURE.md).
type (
	// CatalogIngester routes live radio/CDR streams into shard-local
	// catalog builders over bounded channels; the built catalog is
	// bit-identical to a batch build at any worker count.
	CatalogIngester = ingest.CatalogIngester
	// RecordStream is a bounded channel-based record source (the
	// PacketSource idiom), generic over the record type.
	RecordStream[T any] = probe.Stream[T]
	// MNOSink receives an out-of-core MNO generation: one Device
	// callback per device (with its IR.88 verdict) and one Record
	// callback per catalog record, in the materialized order.
	MNOSink = dataset.MNOSink
	// MNOStream summarizes a finished out-of-core MNO generation —
	// counts, transparency registry and the peak device residency.
	MNOStream = dataset.MNOStream
)

// Streaming constructors and generators.
var (
	// NewCatalogIngester starts a streaming catalog build over a
	// sharded builder; non-positive depth means ingest.DefaultDepth.
	NewCatalogIngester = ingest.NewCatalogIngester
	// GenerateSMIPStreaming builds the §7 SMIP dataset through the
	// per-event measurement path without materializing the capture.
	GenerateSMIPStreaming = dataset.GenerateSMIPStreaming
	// StreamM2M delivers the §3 platform transaction stream to a sink
	// in deterministic order under a bounded producer window.
	StreamM2M = dataset.StreamM2M
	// ReadTransactions decodes a binary signaling wire stream into a
	// sink record by record — the signaling twin of
	// CatalogIngester.ReadRecords.
	ReadTransactions = ingest.ReadTransactions
	// StreamMNO is GenerateMNO's out-of-core twin: it synthesizes the
	// §4 dataset into an MNOSink under a bounded device residency,
	// bit-identical to the materialized build at any worker count.
	StreamMNO = dataset.StreamMNO
)

// Fanout forwards each record to several sinks in order — the
// persist-and-ingest primitive: point one sink at an archive writer
// and another at a live consumer or ingester.
func Fanout[T any](sinks ...func(T)) func(T) { return probe.Fanout(sinks...) }

// Archive plane: the segmented, indexed, append-only store that makes
// record feeds durable — archived once while a live build ingests
// them, replayed many times with index-driven pruning (see
// internal/store and docs/ARCHITECTURE.md).
type (
	// ArchiveMeta is the stream metadata a store carries (observing
	// host, window start, window length).
	ArchiveMeta = store.Meta
	// ArchiveWriter persists a CDR/xDR feed into segment files; its
	// Sink is a valid probe fanout target.
	ArchiveWriter = store.Writer
	// SignalingArchiveWriter persists a signaling-transaction feed.
	SignalingArchiveWriter = store.SignalingWriter
	// ArchiveReader reads a store back: verification, query planning,
	// pruned sequential replay, and the concurrent catalog rebuild.
	ArchiveReader = store.Reader
	// ArchiveQuery selects what a replay reads: day range, device
	// range or exact device (bloom-pruned), visited network; the zero
	// query keeps everything. Queries also narrow compactions.
	ArchiveQuery = store.Query
	// ArchiveQueryPlan is the dry-run view of a query's segment
	// selection: what would be read, what the indexes prune.
	ArchiveQueryPlan = store.QueryPlan
	// ArchiveReplayer reads a store back.
	//
	// Deprecated: ArchiveReplayer is the pre-Query name of
	// ArchiveReader; new code should use ArchiveReader.
	ArchiveReplayer = store.Replayer
	// ArchiveFilter prunes a replay.
	//
	// Deprecated: ArchiveFilter is the pre-redesign name of
	// ArchiveQuery; new code should use ArchiveQuery.
	ArchiveFilter = store.Filter
	// ArchiveStats instruments a replay: segments read vs pruned
	// (range and bloom) vs torn, bytes read, records kept.
	ArchiveStats = store.ReplayStats
	// ArchiveManifest is the store-level segment index.
	ArchiveManifest = store.Manifest
	// ArchiveManifestInfo reports how a store's manifest was
	// materialized: format version, checkpoint coverage, log tail.
	ArchiveManifestInfo = store.ManifestInfo
	// ArchiveCompactOptions tunes CompactArchive: output segment
	// size, narrowing query, merge fan-in, temp-file placement.
	ArchiveCompactOptions = store.CompactOptions
	// ArchiveCompactPlan is CompactArchive's dry-run view: what would
	// merge, from where, in how many passes.
	ArchiveCompactPlan = store.CompactPlan
	// ArchiveCompactStats reports what a compaction did: segments
	// merged vs pruned, records in vs out, passes run.
	ArchiveCompactStats = store.CompactStats
)

// Archive constructors.
var (
	// NewArchiveWriter creates a CDR/xDR store at a directory;
	// non-positive segment size means store.DefaultSegmentRecords.
	NewArchiveWriter = store.NewWriter
	// NewSignalingArchiveWriter creates a signaling-transaction store.
	NewSignalingArchiveWriter = store.NewSignalingWriter
	// OpenArchive loads a store's manifest for verification or replay.
	OpenArchive = store.Open
	// CompactArchive merges N input stores into one time-ordered
	// store whose replay is bit-identical to replaying the inputs.
	CompactArchive = store.Compact
	// PlanArchiveCompaction returns the merge plan CompactArchive
	// would execute, without reading any segment body.
	PlanArchiveCompaction = store.PlanCompact
)

// Serving plane: the read-only HTTP/JSON query daemon over archive
// stores — replayed slices in a size-bounded LRU with single-flight
// fill (see internal/serve, cmd/roamd and docs/ARCHITECTURE.md).
type (
	// QueryServer answers catalog, classification and analysis
	// queries over mounted archive stores.
	QueryServer = serve.Server
	// QueryServerConfig parameterizes a QueryServer (fill
	// parallelism, cache bound).
	QueryServerConfig = serve.Config
	// ServedSite is one mounted store's row in the site listing.
	ServedSite = serve.SiteInfo
	// ServeCacheStats snapshots the slice cache's counters.
	ServeCacheStats = serve.CacheStats
	// LoadConfig parameterizes the closed-loop load generator.
	LoadConfig = serve.LoadConfig
	// LoadResult is one load run's latency/throughput accounting.
	LoadResult = serve.LoadResult
)

// Serving constructors.
var (
	// NewQueryServer returns an empty query server; mount stores with
	// Mount or MountSites, then serve Handler().
	NewQueryServer = serve.New
	// RunServeLoad drives a closed-loop request mix against a running
	// daemon and reports per-op latency percentiles and throughput.
	RunServeLoad = serve.RunLoad
)

// Observability plane: the zero-dependency metrics registry and span
// tracer the daemon, store and ingest layers report into. Every hook
// in the instrumented packages is a nil-safe no-op, so servers built
// without a registry run the uninstrumented code paths byte for byte
// (see internal/obs and the "Observability" section of
// docs/ARCHITECTURE.md).
type (
	// MetricsRegistry holds counters, gauges and histograms and writes
	// Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// SpanTracer records recent operation spans and logs slow ones.
	SpanTracer = obs.Tracer
)

// Observability constructors.
var (
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewSpanTracer returns a ring-buffered tracer; ops slower than
	// the threshold go to the log function.
	NewSpanTracer = obs.NewTracer
)

// NewStreamingSession is NewSessionWorkers with the bounded-memory
// streaming ingestion paths enabled: the SMIP catalog builds from
// per-event probe streams through the ingest router, and the M2M
// transaction stream flows through the ordered fan-in before the
// runners materialize it (bit-identical to the batch M2M build).
func NewStreamingSession(seed uint64, factor float64, workers int) *Session {
	return experiments.NewStreamingSession(seed, factor, workers)
}

// Experiments.
type (
	// Federation is the session layer: one shared world observed from
	// any number of visited-operator sites. A single-site Federation
	// is the classic Session.
	Federation = experiments.Federation
	// Site is one visited operator's analysis view inside a
	// Federation: summaries, labels and classification derived from
	// its own catalog.
	Site = experiments.Site
	// Session shares datasets between experiment runners; it is an
	// alias of Federation (the single-site view).
	Session = experiments.Session
	// Experiment is a registered table/figure runner.
	Experiment = experiments.Runner
	// Report is an experiment outcome.
	Report = experiments.Report
	// ResultTable is an aligned plain-text table.
	ResultTable = analysis.Table
	// ECDF is an empirical CDF.
	ECDF = analysis.ECDF
)

// Extensions beyond the paper's evaluation (§8 directions).
type (
	// TransparencyRegistry holds IR.88-style M2M declarations.
	TransparencyRegistry = core.Registry
	// TransparencyDeclaration is one home operator's published data.
	TransparencyDeclaration = core.Declaration
	// RateCard is a wholesale inter-operator tariff.
	RateCard = settlement.RateCard
	// SettlementStatement is an inbound-roaming settlement run.
	SettlementStatement = settlement.Statement
	// LatencyModel estimates user-plane RTT per roaming architecture.
	LatencyModel = netsim.LatencyModel
	// RoamingConfig is a roaming architecture (HR / LBO / IHBO).
	RoamingConfig = netsim.RoamingConfig
)

// Extension constructors.
var (
	NewTransparencyRegistry = core.NewRegistry
	DefaultRates            = settlement.DefaultRates
	Settle                  = settlement.Settle
	DefaultLatencyModel     = netsim.DefaultLatencyModel
)

// NewSession returns an experiment session at the given seed and
// scale factor (1.0 ≈ one tenth of paper scale). Pipelines run with
// one worker per CPU; results are identical for every worker count.
func NewSession(seed uint64, factor float64) *Session {
	return experiments.NewSession(seed, factor)
}

// NewFederation returns a multi-site session: one shared GSMA
// catalog, operator world and global roamer fleet, observed
// independently by every visited MNO in hosts (none = the default
// three-site footprint). Every classic runner works on it unchanged;
// the fed-* runners and Sites() expose the cross-site views.
func NewFederation(seed uint64, factor float64, workers int, hosts ...PLMN) *Federation {
	return experiments.NewFederation(seed, factor, workers, hosts...)
}

// NewSessionWorkers is NewSession with an explicit pipeline worker
// count (below one = one worker per CPU, one = serial). Same seed and
// factor produce bit-identical datasets, summaries and classification
// results at every worker count.
func NewSessionWorkers(seed uint64, factor float64, workers int) *Session {
	return experiments.NewSessionWorkers(seed, factor, workers)
}

// PipelineWorkers normalizes a worker count the way every Workers
// config field and -workers flag does: values below one mean one
// worker per available CPU.
func PipelineWorkers(n int) int { return pipeline.Workers(n) }

// Experiments returns every registered table/figure runner in paper
// order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one runner ("t1", "fig2", ..., "abl-policy").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// NewECDF builds an empirical CDF from samples.
func NewECDF(samples []float64) *ECDF { return analysis.NewECDF(samples) }
