// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artefact; see DESIGN.md §4 for the
// mapping) plus the design-choice ablations of DESIGN.md §5.
//
// Each figure benchmark measures the full pipeline — dataset
// synthesis, capture, catalog build, classification and analysis — at
// a small scale so `go test -bench=. -benchmem` completes in minutes.
// The printed report values are the same ones EXPERIMENTS.md records.
package whereroam

import (
	"bytes"
	"io"
	"testing"
	"time"

	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/experiments"
	"whereroam/internal/geo"
	"whereroam/internal/mccmnc"
	"whereroam/internal/radio"
	"whereroam/internal/rng"
	"whereroam/internal/signaling"
	"whereroam/internal/store"
)

// benchScale keeps each per-iteration pipeline run small.
const benchScale = 0.08

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh session per iteration measures the full pipeline,
		// not a cached dataset.
		sess := experiments.NewSession(uint64(i+1), benchScale)
		rep := r.Run(sess)
		if len(rep.Values) == 0 {
			b.Fatalf("%s produced no values", id)
		}
	}
}

// §3.2 in-text table.
func BenchmarkTable1HMNOShares(b *testing.B) { benchExperiment(b, "t1") }

// Fig 2.
func BenchmarkFig2VisitedCountry(b *testing.B) { benchExperiment(b, "fig2") }

// Fig 3.
func BenchmarkFig3SignalingCDF(b *testing.B) { benchExperiment(b, "fig3l") }
func BenchmarkFig3VMNOCount(b *testing.B)    { benchExperiment(b, "fig3c") }
func BenchmarkFig3Switches(b *testing.B)     { benchExperiment(b, "fig3r") }

// §4.2/§4.3 in-text table.
func BenchmarkTable2Population(b *testing.B) { benchExperiment(b, "t2") }

// Fig 5–10.
func BenchmarkFig5HomeCountry(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6ClassLabel(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7ActiveDays(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8Gyration(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9RATUsage(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10Traffic(b *testing.B)    { benchExperiment(b, "fig10") }

// Fig 11 and 12, §4.4 in-text table.
func BenchmarkFig11SMIP(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12Verticals(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkTable3SMIPProvenance(b *testing.B) { benchExperiment(b, "t3") }

// Ablations (DESIGN.md §5).
func BenchmarkAblationClassifierSteps(b *testing.B) { benchExperiment(b, "abl-classifier") }
func BenchmarkAblationGyration(b *testing.B)        { benchExperiment(b, "abl-gyration") }
func BenchmarkAblationVMNOPolicy(b *testing.B)      { benchExperiment(b, "abl-policy") }

// Extensions (§8 and DESIGN.md §4's future-work entries).
func BenchmarkExtRevenue(b *testing.B)      { benchExperiment(b, "ext-revenue") }
func BenchmarkExtTransparency(b *testing.B) { benchExperiment(b, "ext-transparency") }
func BenchmarkExtNBIoT(b *testing.B)        { benchExperiment(b, "ext-nbiot") }
func BenchmarkExtLatency(b *testing.B)      { benchExperiment(b, "ext-latency") }

// BenchmarkAblationCodec contrasts the preallocated streaming decoder
// (the gopacket DecodingLayerParser idiom) with the naive
// allocate-per-stream ReadAll path over the same byte stream.
func BenchmarkAblationCodec(b *testing.B) {
	txs := make([]signaling.Transaction, 20000)
	base := time.Date(2018, 11, 19, 0, 0, 0, 0, time.UTC)
	sim := mccmnc.MustParse("21407")
	visited := mccmnc.MustParse("23410")
	for i := range txs {
		txs[i] = signaling.Transaction{
			Device:    DeviceID(i),
			Time:      base.Add(time.Duration(i) * time.Second),
			SIM:       sim,
			Visited:   visited,
			Procedure: signaling.ProcUpdateLocation,
			RAT:       radio.RAT4G,
		}
	}
	var buf bytes.Buffer
	if err := signaling.WriteAll(&buf, txs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	b.Run("preallocated", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := signaling.NewReader(bytes.NewReader(data))
			var tx signaling.Transaction
			n := 0
			for {
				if err := r.Read(&tx); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
				n++
			}
			if n != len(txs) {
				b.Fatalf("decoded %d", n)
			}
		}
	})
	b.Run("allocating", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := signaling.ReadAll(bytes.NewReader(data))
			if err != nil || len(got) != len(txs) {
				b.Fatalf("decoded %d, err %v", len(got), err)
			}
		}
	})
}

// BenchmarkAblationGyrationMetric isolates the metric cost itself
// (weighted vs unweighted) apart from the experiment harness.
func BenchmarkAblationGyrationMetric(b *testing.B) {
	src := rng.New(1)
	visits := make([]geo.Visit, 200)
	for i := range visits {
		visits[i] = geo.Visit{
			At:     geo.Point{Lat: 51 + src.Float64(), Lon: -1 + src.Float64()},
			Weight: 1 + src.Float64()*100,
		}
	}
	b.Run("weighted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = geo.Gyration(visits)
		}
	})
	b.Run("unweighted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = geo.GyrationUnweighted(visits)
		}
	})
}

// benchPipeline measures the synthesis → catalog → classification
// chain at a fixed worker count. The serial/parallel pair quantifies
// the sharded engine's speedup instead of asserting it; both paths
// run the same chunked code over the same shard boundaries, so the
// comparison isolates parallelism itself.
func benchPipeline(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := dataset.DefaultMNOConfig()
		cfg.Seed = uint64(i + 1)
		cfg.Devices = int(float64(cfg.Devices) * benchScale * 4)
		cfg.Workers = workers
		ds := dataset.GenerateMNO(cfg)
		sums := ds.Catalog.SummariesWorkers(ds.GSMA, workers)
		results := core.NewClassifier().ClassifyWorkers(sums, workers)
		if len(results) != len(sums) || len(sums) == 0 {
			b.Fatalf("pipeline produced %d results for %d summaries", len(results), len(sums))
		}
	}
}

func BenchmarkPipelineSerial(b *testing.B)   { benchPipeline(b, 1) }
func BenchmarkPipelineParallel(b *testing.B) { benchPipeline(b, 0) }

// The raw-capture path (per-event synthesis through probe taps into
// the sharded catalog builder) is the heaviest per-device workload;
// its pair tracks the builder sharding.
func benchRawCapture(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := dataset.DefaultSMIPConfig()
		cfg.Seed = uint64(i + 1)
		cfg.NativeMeters = 1200
		cfg.RoamingMeters = 800
		cfg.Workers = workers
		ds, _ := dataset.GenerateSMIPRaw(cfg)
		if len(ds.Catalog.Records) == 0 {
			b.Fatal("raw capture built an empty catalog")
		}
	}
}

func BenchmarkRawCaptureSerial(b *testing.B)   { benchRawCapture(b, 1) }
func BenchmarkRawCaptureParallel(b *testing.B) { benchRawCapture(b, 0) }

// The streaming twin of the raw-capture pair: the same per-event
// synthesis, but events flow through the ingest router into
// shard-local builders instead of materializing. Run with -benchmem:
// the bytes/op gap against BenchmarkRawCapture* is the materialized
// capture the streaming path never allocates; cmd/benchpipe
// additionally records the heap high-water marks.
func benchStreamCapture(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := dataset.DefaultSMIPConfig()
		cfg.Seed = uint64(i + 1)
		cfg.NativeMeters = 1200
		cfg.RoamingMeters = 800
		cfg.Workers = workers
		if ds := dataset.GenerateSMIPStreaming(cfg); len(ds.Catalog.Records) == 0 {
			b.Fatal("streaming capture built an empty catalog")
		}
	}
}

func BenchmarkStreamCaptureSerial(b *testing.B)   { benchStreamCapture(b, 1) }
func BenchmarkStreamCaptureParallel(b *testing.B) { benchStreamCapture(b, 0) }

// BenchmarkStoreReplay measures rebuilding the devices-catalog from a
// segmented archive (internal/store), full versus day-pruned. The
// archive is written once outside the timer in the mediation-feed
// shape (time-ordered), so segments are day-correlated and the pruned
// replay demonstrates what the footer index buys: whole segments
// skipped unread.
func BenchmarkStoreReplay(b *testing.B) {
	cfg := dataset.DefaultSMIPConfig()
	cfg.NativeMeters = 1200
	cfg.RoamingMeters = 800
	cfg.Workers = 0
	_, raw := dataset.GenerateSMIPRaw(cfg)
	dir := b.TempDir()
	w, err := store.NewWriter(dir, store.Meta{Host: cfg.Host, Start: cfg.Start, Days: cfg.Days}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	for i := range raw.Records {
		if err := w.Append(raw.Records[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	rep, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, f store.Filter) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cat, stats, err := rep.Replay(f, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(cat.Records) == 0 || stats.RecordsKept == 0 {
				b.Fatal("replay produced an empty catalog")
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, store.Filter{}) })
	b.Run("pruned", func(b *testing.B) { run(b, store.Filter{}.Days(cfg.Days/2, cfg.Days/2+1)) })
}

// BenchmarkEndToEnd runs every registered experiment once per
// iteration over a shared session — the cost of `roamrepro all`.
func BenchmarkEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess := experiments.NewSession(uint64(i+1), benchScale)
		for _, r := range experiments.All() {
			if rep := r.Run(sess); len(rep.Values) == 0 {
				b.Fatalf("%s empty", r.ID)
			}
		}
	}
}
