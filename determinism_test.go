// Determinism under parallelism: the sharded pipeline must produce
// bit-identical artefacts at every worker count — same catalog
// records, same summary ordering and contents, same classification
// breakdown. These tests pin the contract the engine is built on
// (per-entity RNG substreams, worker-count-independent shard
// boundaries, shard-ordered merges) for the synthesis → catalog →
// classification chain.
package whereroam

import (
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/devices"
	"whereroam/internal/identity"
	"whereroam/internal/signaling"
	"whereroam/internal/store"
)

// detMNO generates a small MNO dataset at the given seed and worker
// count and runs the full downstream pipeline at that worker count.
func detMNO(seed uint64, workers int) (*dataset.MNODataset, []catalog.Summary, []core.Result) {
	cfg := dataset.DefaultMNOConfig()
	cfg.Seed = seed
	cfg.Devices = 1500
	cfg.Workers = workers
	ds := dataset.GenerateMNO(cfg)
	sums := ds.Catalog.SummariesWorkers(ds.GSMA, workers)
	results := core.NewClassifier().ClassifyWorkers(sums, workers)
	return ds, sums, results
}

func TestPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		serial, serialSums, serialRes := detMNO(seed, 1)
		for _, workers := range []int{4, 0} {
			par, parSums, parRes := detMNO(seed, workers)

			if len(par.Catalog.Records) != len(serial.Catalog.Records) {
				t.Fatalf("seed %d workers %d: %d records, serial has %d",
					seed, workers, len(par.Catalog.Records), len(serial.Catalog.Records))
			}
			if !reflect.DeepEqual(par.Catalog.Records, serial.Catalog.Records) {
				t.Errorf("seed %d workers %d: catalog records differ from serial", seed, workers)
			}
			if !reflect.DeepEqual(parSums, serialSums) {
				t.Errorf("seed %d workers %d: summaries differ from serial (ordering or contents)", seed, workers)
			}
			if !reflect.DeepEqual(par.Truth, serial.Truth) {
				t.Errorf("seed %d workers %d: ground truth differs from serial", seed, workers)
			}
			if !reflect.DeepEqual(par.Declared, serial.Declared) {
				t.Errorf("seed %d workers %d: IR.88 verdicts differ from serial", seed, workers)
			}
			if !reflect.DeepEqual(parRes, serialRes) {
				t.Errorf("seed %d workers %d: classification results differ from serial", seed, workers)
			}
			sb, pb := core.Breakdown(serialRes), core.Breakdown(parRes)
			if !reflect.DeepEqual(sb, pb) {
				t.Errorf("seed %d workers %d: breakdown %v, serial %v", seed, workers, pb, sb)
			}
		}
	}
}

// The M2M platform capture concatenates shard-local probe streams in
// shard order, so the transaction stream is also worker-count
// invariant.
func TestM2MDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := dataset.DefaultM2MConfig()
	cfg.Devices = 800
	cfg.Workers = 1
	serial := dataset.GenerateM2M(cfg)
	cfg.Workers = 4
	par := dataset.GenerateM2M(cfg)
	if !reflect.DeepEqual(serial.Transactions, par.Transactions) {
		t.Error("workers=4 transaction stream differs from serial")
	}
	if !reflect.DeepEqual(serial.Truth, par.Truth) {
		t.Error("workers=4 ground truth differs from serial")
	}
}

// The raw SMIP capture exercises the sharded catalog builder: device
// streams route to shard-local builders whose outputs merge into one
// sorted catalog.
func TestSMIPRawDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := dataset.DefaultSMIPConfig()
	cfg.NativeMeters, cfg.RoamingMeters = 300, 200
	cfg.Workers = 1
	serial, serialRaw := dataset.GenerateSMIPRaw(cfg)
	cfg.Workers = 4
	par, parRaw := dataset.GenerateSMIPRaw(cfg)
	if !reflect.DeepEqual(serialRaw.Radio, parRaw.Radio) {
		t.Error("workers=4 radio stream differs from serial")
	}
	if !reflect.DeepEqual(serialRaw.Records, parRaw.Records) {
		t.Error("workers=4 CDR stream differs from serial")
	}
	if !reflect.DeepEqual(serial.Catalog.Records, par.Catalog.Records) {
		t.Error("workers=4 built catalog differs from serial")
	}
}

// The streaming ingest path — taps feeding the device-hash router
// into shard-local builders, no event slice ever materialized — must
// produce the batch path's catalog bit for bit, at every worker
// count. This is the contract the whole ingest subsystem is built on:
// the builder's output depends only on per-device record order, and
// both paths deliver the same per-device time-sorted sequences.
func TestSMIPStreamingMatchesBatch(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := dataset.DefaultSMIPConfig()
		cfg.Seed = seed
		cfg.NativeMeters, cfg.RoamingMeters = 300, 200
		cfg.Workers = 1
		batch, _ := dataset.GenerateSMIPRaw(cfg)

		for _, workers := range []int{1, 4, 0} {
			scfg := cfg
			scfg.Workers = workers
			stream := dataset.GenerateSMIPStreaming(scfg)
			if !reflect.DeepEqual(batch.Catalog.Records, stream.Catalog.Records) {
				t.Errorf("seed %d workers %d: streaming catalog differs from batch", seed, workers)
			}
			if !reflect.DeepEqual(batch.Native, stream.Native) {
				t.Errorf("seed %d workers %d: native cohort map differs", seed, workers)
			}
			if batch.NativeRange != stream.NativeRange {
				t.Errorf("seed %d workers %d: native IMSI range differs", seed, workers)
			}
		}
	}
}

// StreamM2M's ordered fan-in delivers the exact serial emission order
// at any worker count, so sorting the streamed records by time must
// reproduce GenerateM2M's materialized transaction stream bit for
// bit.
func TestStreamM2MMatchesGenerate(t *testing.T) {
	cfg := dataset.DefaultM2MConfig()
	cfg.Devices = 800
	cfg.Workers = 1
	batch := dataset.GenerateM2M(cfg)

	for _, workers := range []int{1, 4} {
		scfg := cfg
		scfg.Workers = workers
		var txs []signaling.Transaction
		stream := dataset.StreamM2M(scfg, func(tx signaling.Transaction) { txs = append(txs, tx) })
		sort.SliceStable(txs, func(i, j int) bool { return txs[i].Time.Before(txs[j].Time) })
		if !reflect.DeepEqual(batch.Transactions, txs) {
			t.Errorf("workers %d: streamed+sorted transactions differ from batch", workers)
		}
		if !reflect.DeepEqual(batch.Truth, stream.Truth) {
			t.Errorf("workers %d: ground truth differs from batch", workers)
		}
	}
}

// Tied timestamps must not break the batch/streaming equivalence:
// both paths order ties by serial emission order (GenerateM2M's final
// sort is stable over the shard-ordered capture; the stream arrives
// in that order and is stable-sorted by consumers). A one-day window
// forces heavy second-granularity collisions.
func TestStreamM2MTieHeavyStableOrder(t *testing.T) {
	cfg := dataset.DefaultM2MConfig()
	cfg.Devices = 600
	cfg.Days = 1
	cfg.Workers = 1
	batch := dataset.GenerateM2M(cfg)

	ties := 0
	for i := 1; i < len(batch.Transactions); i++ {
		if batch.Transactions[i].Time.Equal(batch.Transactions[i-1].Time) &&
			batch.Transactions[i].Device != batch.Transactions[i-1].Device {
			ties++
		}
	}
	if ties == 0 {
		t.Fatal("capture has no cross-device timestamp ties; the regression needs them")
	}

	for _, workers := range []int{1, 4} {
		scfg := cfg
		scfg.Workers = workers
		var txs []signaling.Transaction
		dataset.StreamM2M(scfg, func(tx signaling.Transaction) { txs = append(txs, tx) })
		sort.SliceStable(txs, func(i, j int) bool { return txs[i].Time.Before(txs[j].Time) })
		if !reflect.DeepEqual(batch.Transactions, txs) {
			t.Errorf("workers %d: %d cross-device ties permuted differently in streamed capture", workers, ties)
		}
	}
}

// A federation observes one shared fleet from several visited
// operators; every site's catalog — and everything derived from it —
// must be bit-identical at any worker count and across the
// batch-vs-streaming catalog build (the batch path folds per-shard
// builders with catalog.Builder.Merge, the streaming path routes the
// same events through ingest.CatalogIngester).
func TestFederationDeterministicAcrossWorkerCounts(t *testing.T) {
	base := dataset.DefaultFederationConfig()
	base.FleetDevices, base.NativePerSite, base.Days = 250, 150, 8
	base.Workers = 1
	serial := dataset.GenerateFederation(base)

	if len(serial.Sites) != 3 {
		t.Fatalf("default federation has %d sites, want 3", len(serial.Sites))
	}
	for _, streaming := range []bool{false, true} {
		for _, workers := range []int{1, 4, 0} {
			if !streaming && workers == 1 {
				continue // the baseline itself
			}
			cfg := base
			cfg.Workers = workers
			cfg.Streaming = streaming
			fed := dataset.GenerateFederation(cfg)
			if !reflect.DeepEqual(serial.Fleet, fed.Fleet) {
				t.Errorf("streaming=%v workers=%d: shared fleet differs", streaming, workers)
			}
			if !reflect.DeepEqual(serial.Truth, fed.Truth) {
				t.Errorf("streaming=%v workers=%d: fleet truth differs", streaming, workers)
			}
			if !reflect.DeepEqual(serial.Schedule, fed.Schedule) {
				t.Errorf("streaming=%v workers=%d: presence schedule differs", streaming, workers)
			}
			for j := range serial.Sites {
				a, b := serial.Sites[j], fed.Sites[j]
				if !reflect.DeepEqual(a.Catalog.Records, b.Catalog.Records) {
					t.Errorf("streaming=%v workers=%d site %d: catalog differs", streaming, workers, j)
				}
				if !reflect.DeepEqual(a.Present, b.Present) {
					t.Errorf("streaming=%v workers=%d site %d: fleet presence differs", streaming, workers, j)
				}
				if !reflect.DeepEqual(a.Truth, b.Truth) {
					t.Errorf("streaming=%v workers=%d site %d: local truth differs", streaming, workers, j)
				}
			}
		}
	}
}

// The shared presence schedule makes federation presence mutually
// exclusive: a fleet device scheduled at one site on a day must
// appear in no other site's catalog that day, every observed
// (device, day) must match the schedule exactly, and the invariant
// must hold on the batch and streaming catalog builds alike.
func TestFederationScheduleExclusive(t *testing.T) {
	for _, streaming := range []bool{false, true} {
		cfg := dataset.DefaultFederationConfig()
		cfg.FleetDevices, cfg.NativePerSite, cfg.Days = 300, 100, 8
		cfg.Streaming = streaming
		fed := dataset.GenerateFederation(cfg)

		idx := make(map[identity.DeviceID]int, len(fed.Fleet))
		for i := range fed.Fleet {
			idx[fed.Fleet[i].ID] = i
		}
		type devDay struct {
			dev identity.DeviceID
			day int
		}
		seenAt := map[devDay]int{}
		checked := 0
		for j, site := range fed.Sites {
			for i := range site.Catalog.Records {
				rec := &site.Catalog.Records[i]
				fi, isFleet := idx[rec.Device]
				if !isFleet {
					continue
				}
				checked++
				if got := fed.ScheduledSite(fi, rec.Day); int(got) != j {
					t.Fatalf("streaming=%v: device %v day %d observed at site %d but scheduled at %d",
						streaming, rec.Device, rec.Day, j, got)
				}
				key := devDay{rec.Device, rec.Day}
				if prev, dup := seenAt[key]; dup && prev != j {
					t.Fatalf("streaming=%v: device %v active at sites %d and %d on day %d",
						streaming, rec.Device, prev, j, rec.Day)
				}
				seenAt[key] = j
			}
		}
		if checked == 0 {
			t.Fatalf("streaming=%v: no fleet device-days observed; invariant vacuous", streaming)
		}
	}
}

// The federated M2M plane — the §3/§6 signaling view of the shared
// fleet — must be bit-identical across worker counts, and its
// streaming twin must reproduce the batch stream after a stable time
// sort. Every transaction's visited network must follow the shared
// schedule (cancel-location legs of a switch aim at the previous
// day's network by design).
func TestFederationM2MPlaneDeterministic(t *testing.T) {
	cfg := dataset.DefaultFederationConfig()
	cfg.FleetDevices, cfg.NativePerSite, cfg.Days = 250, 50, 8
	cfg.Workers = 1
	fed := dataset.GenerateFederation(cfg)
	serial := dataset.GenerateFederationM2M(fed)
	if len(serial.Transactions) == 0 {
		t.Fatal("federated M2M plane emitted no transactions")
	}

	cfg.Workers = 4
	fedPar := dataset.GenerateFederation(cfg)
	par := dataset.GenerateFederationM2M(fedPar)
	if !reflect.DeepEqual(serial.Transactions, par.Transactions) {
		t.Error("workers=4 federated M2M stream differs from serial")
	}
	if !reflect.DeepEqual(serial.Truth, par.Truth) {
		t.Error("workers=4 federated M2M truth differs from serial")
	}

	var txs []signaling.Transaction
	stream := dataset.StreamFederationM2M(fedPar, func(tx signaling.Transaction) { txs = append(txs, tx) })
	sort.SliceStable(txs, func(i, j int) bool { return txs[i].Time.Before(txs[j].Time) })
	if !reflect.DeepEqual(serial.Transactions, txs) {
		t.Error("streamed+sorted federated M2M plane differs from batch")
	}
	if !reflect.DeepEqual(serial.Truth, stream.Truth) {
		t.Error("streamed federated M2M truth differs from batch")
	}

	// Schedule consistency: every non-cancel transaction sits on the
	// network the schedule names for its day.
	idx := make(map[identity.DeviceID]int, len(fed.Fleet))
	for i := range fed.Fleet {
		idx[fed.Fleet[i].ID] = i
	}
	for _, tx := range serial.Transactions {
		if tx.Procedure == signaling.ProcCancelLocation {
			continue
		}
		day := int(tx.Time.Sub(fed.Start).Hours() / 24)
		want := fed.Fleet[idx[tx.Device]].Home
		if s := fed.ScheduledSite(idx[tx.Device], day); s >= 0 {
			want = fed.Hosts[s]
		}
		if tx.Visited != want {
			t.Fatalf("tx %v on day %d visited %v, schedule says %v", tx, day, tx.Visited, want)
		}
	}
}

// The federated SMIP plane builds one meters-only catalog per site
// through the same batch/streaming per-event path as the main site
// catalogs, so it must be bit-identical across worker counts and the
// batch/streaming switch — and, meters being stationary, each fleet
// meter must appear at exactly one site.
func TestFederationSMIPPlaneDeterministic(t *testing.T) {
	base := dataset.DefaultFederationConfig()
	base.FleetDevices, base.NativePerSite, base.Days = 250, 60, 8
	base.Workers = 1
	serial := dataset.GenerateFederationSMIP(dataset.GenerateFederation(base))

	for _, streaming := range []bool{false, true} {
		for _, workers := range []int{4, 0} {
			cfg := base
			cfg.Workers = workers
			cfg.Streaming = streaming
			plane := dataset.GenerateFederationSMIP(dataset.GenerateFederation(cfg))
			for j := range serial.Sites {
				a, b := serial.Sites[j], plane.Sites[j]
				if !reflect.DeepEqual(a.Catalog.Records, b.Catalog.Records) {
					t.Errorf("streaming=%v workers=%d site %d: SMIP catalog differs", streaming, workers, j)
				}
				if !reflect.DeepEqual(a.Native, b.Native) {
					t.Errorf("streaming=%v workers=%d site %d: native cohort differs", streaming, workers, j)
				}
				if a.NativeRange != b.NativeRange {
					t.Errorf("streaming=%v workers=%d site %d: native range differs", streaming, workers, j)
				}
			}
		}
	}

	sitesOf := map[identity.DeviceID]int{}
	fleetMeters := 0
	for _, site := range serial.Sites {
		for id, native := range site.Native {
			if native {
				continue
			}
			sitesOf[id]++
			if sitesOf[id] > 1 {
				t.Fatalf("fleet meter %v deployed at more than one site", id)
			}
			fleetMeters++
		}
	}
	if fleetMeters == 0 {
		t.Fatal("no fleet meters deployed at any site")
	}
}

// The archive closes the loop the store subsystem is built for:
// archive a live feed once while the catalog builds, replay it many
// times — and the replayed catalog must be bit-identical to the live
// CDR-plane build at every worker count, even though the archive was
// written from concurrent emission shards (so its segmentation is not
// itself deterministic). The live reference is the CDR/xDR plane of
// the same seed's capture: the batch build feeds a single builder
// serially, the streaming build routes the identical records through
// the ingest router — the archive must reproduce both.
func TestStoreReplayDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := dataset.DefaultSMIPConfig()
		cfg.Seed = seed
		cfg.NativeMeters, cfg.RoamingMeters = 300, 200
		cfg.Workers = 1
		_, raw := dataset.GenerateSMIPRaw(cfg)

		// Live CDR-plane reference builds: batch (serial builder) and
		// streaming (ingest router) over the same per-device sequences.
		b := catalog.NewBuilder(cfg.Host, cfg.Start, cfg.Days, nil)
		for i := range raw.Records {
			b.AddRecord(raw.Records[i])
		}
		live := b.Build()
		sb := catalog.NewShardedBuilder(cfg.Host, cfg.Start, cfg.Days, nil, 4)
		in := NewCatalogIngester(sb, 0)
		for i := range raw.Records {
			in.OfferRecord(raw.Records[i])
		}
		if liveStream := in.Build(4); !reflect.DeepEqual(live.Records, liveStream.Records) {
			t.Fatalf("seed %d: live streaming CDR-plane build differs from batch", seed)
		}

		// Archive the feed while the streaming generator builds its
		// catalog, from four concurrent emission workers: the archive's
		// segment contents depend on tap scheduling, the replayed
		// catalog must not.
		dir := filepath.Join(t.TempDir(), "feed")
		w, err := store.NewWriter(dir, store.Meta{Host: cfg.Host, Start: cfg.Start, Days: cfg.Days}, 512)
		if err != nil {
			t.Fatal(err)
		}
		scfg := cfg
		scfg.Workers = 4
		scfg.ArchiveCDRs = w.Sink()
		dataset.GenerateSMIPStreaming(scfg)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		rep, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Manifest().TotalRecords; got != int64(len(raw.Records)) {
			t.Fatalf("seed %d: archived %d records, live capture has %d", seed, got, len(raw.Records))
		}
		for _, workers := range []int{1, 4, 0} {
			cat, _, err := rep.Replay(store.Filter{}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(live.Records, cat.Records) {
				t.Errorf("seed %d workers %d: replayed catalog differs from the live CDR-plane build", seed, workers)
			}
		}
	}
}

// Pruned replay must provably touch less of the store than a full
// replay — whole segments skipped by the footer index, fewer body
// bytes read — while producing exactly the day-sliced catalog. The
// archive here is the mediation-feed shape (time-ordered, as a
// national feed arrives), which is what makes segments day-correlated
// and prunable.
func TestStorePrunedReplay(t *testing.T) {
	cfg := dataset.DefaultSMIPConfig()
	cfg.NativeMeters, cfg.RoamingMeters = 300, 200
	cfg.Workers = 1
	_, raw := dataset.GenerateSMIPRaw(cfg)

	dir := filepath.Join(t.TempDir(), "feed")
	w, err := store.NewWriter(dir, store.Meta{Host: cfg.Host, Start: cfg.Start, Days: cfg.Days}, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw.Records {
		if err := w.Append(raw.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	_, full, err := rep.Replay(store.Filter{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := cfg.Days/2, cfg.Days/2+1
	cat, pruned, err := rep.Replay(store.Filter{}.Days(lo, hi), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.SegmentsPruned == 0 {
		t.Fatal("day-range replay over a time-ordered archive pruned no segments")
	}
	if pruned.BytesRead >= full.BytesRead {
		t.Fatalf("pruned replay read %d body bytes, full replay read %d", pruned.BytesRead, full.BytesRead)
	}

	b := catalog.NewBuilder(cfg.Host, cfg.Start, cfg.Days, nil)
	for i := range raw.Records {
		day := int(raw.Records[i].Time.Sub(cfg.Start) / (24 * time.Hour))
		if day >= lo && day <= hi {
			b.AddRecord(raw.Records[i])
		}
	}
	if want := b.Build(); !reflect.DeepEqual(want.Records, cat.Records) {
		t.Fatal("day-pruned replay differs from the day-sliced live build")
	}
}

// The signaling plane closes the ROADMAP streaming-persistence loop:
// StreamM2M's deterministic ordered stream fans out to a signaling
// store while a consumer drains it live, and replaying the store
// reproduces the exact stream — so the §3 transaction feed is
// archive-once/consume-many like the CDR plane.
func TestStreamM2MArchiveRoundTrip(t *testing.T) {
	cfg := dataset.DefaultM2MConfig()
	cfg.Devices = 500
	cfg.Workers = 4

	dir := filepath.Join(t.TempDir(), "txfeed")
	w, err := NewSignalingArchiveWriter(dir, store.Meta{Start: cfg.Start, Days: cfg.Days}, 256)
	if err != nil {
		t.Fatal(err)
	}
	var live []signaling.Transaction
	dataset.StreamM2M(cfg, Fanout(w.Sink(), func(tx signaling.Transaction) { live = append(live, tx) }))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("streamed capture is empty")
	}

	rep, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []signaling.Transaction
	if _, err := rep.ReplayTransactions(store.Filter{}, func(tx signaling.Transaction) { replayed = append(replayed, tx) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Fatal("replayed signaling stream differs from the live ordered stream")
	}
}

// The out-of-core MNO generator must reproduce the materialized
// dataset bit for bit at every worker count and under a residency
// budget: same devices in the same order, same catalog records, same
// ground truth and IR.88 verdicts. This is the acceptance contract of
// the counting pre-pass — per-shard IMSI block offsets must hand every
// device exactly the IMSI the serial allocation pass would have.
func TestOutOfCoreMNOMatchesMaterialized(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := dataset.DefaultMNOConfig()
		cfg.Seed = seed
		cfg.Devices = 1500
		cfg.Workers = 1
		mat := dataset.GenerateMNO(cfg)

		for _, run := range []struct {
			workers int
			budget  int
		}{{1, 0}, {4, 0}, {0, 0}, {4, 2}} {
			scfg := cfg
			scfg.Workers = run.workers
			scfg.MaxResidentDevices = run.budget
			var devs []devices.Device
			declared := map[identity.DeviceID]bool{}
			truth := map[identity.DeviceID]devices.Class{}
			var recs []catalog.DailyRecord
			stream := dataset.StreamMNO(scfg, dataset.MNOSink{
				Device: func(dev devices.Device, dec bool) {
					devs = append(devs, dev)
					truth[dev.ID] = dev.Class
					if dec {
						declared[dev.ID] = true
					}
				},
				Record: func(rec catalog.DailyRecord) { recs = append(recs, rec) },
			})
			if !reflect.DeepEqual(mat.Devices, devs) {
				t.Errorf("seed %d workers %d budget %d: streamed devices differ from materialized",
					seed, run.workers, run.budget)
			}
			if !reflect.DeepEqual(mat.Catalog.Records, recs) {
				t.Errorf("seed %d workers %d budget %d: streamed catalog records differ from materialized",
					seed, run.workers, run.budget)
			}
			if !reflect.DeepEqual(mat.Truth, truth) {
				t.Errorf("seed %d workers %d budget %d: ground truth differs", seed, run.workers, run.budget)
			}
			if !reflect.DeepEqual(mat.Declared, declared) {
				t.Errorf("seed %d workers %d budget %d: IR.88 verdicts differ", seed, run.workers, run.budget)
			}
			if stream.Records != int64(len(recs)) {
				t.Errorf("seed %d workers %d budget %d: stream reports %d records, sink saw %d",
					seed, run.workers, run.budget, stream.Records, len(recs))
			}
			if run.budget > 0 && stream.ResidentPeak > run.budget {
				t.Errorf("seed %d workers %d: resident peak %d exceeds budget %d",
					seed, run.workers, stream.ResidentPeak, run.budget)
			}
		}
	}
}

// The bounded-memory federation build must reproduce the materialized
// build's per-site catalogs, presence sets and truth maps bit for bit
// at every worker count — and materializing the fleet lazily
// afterwards (EnsureFleet) must reproduce the shared fleet plane too.
func TestOutOfCoreFederationMatchesMaterialized(t *testing.T) {
	base := dataset.DefaultFederationConfig()
	base.FleetDevices, base.NativePerSite, base.Days = 250, 150, 8
	base.Workers = 1
	mat := dataset.GenerateFederation(base)

	for _, workers := range []int{1, 4, 0} {
		cfg := base
		cfg.Workers = workers
		cfg.BoundedMemory = true
		fed := dataset.GenerateFederation(cfg)
		if fed.Fleet != nil || fed.Schedule != nil {
			t.Fatalf("workers=%d: bounded build materialized the fleet plane eagerly", workers)
		}
		for j := range mat.Sites {
			a, b := mat.Sites[j], fed.Sites[j]
			if !reflect.DeepEqual(a.Catalog.Records, b.Catalog.Records) {
				t.Errorf("workers=%d site %d: bounded catalog differs from materialized", workers, j)
			}
			if !reflect.DeepEqual(a.Present, b.Present) {
				t.Errorf("workers=%d site %d: fleet presence differs", workers, j)
			}
			if !reflect.DeepEqual(a.Truth, b.Truth) {
				t.Errorf("workers=%d site %d: local truth differs", workers, j)
			}
		}
		fed.EnsureFleet()
		if !reflect.DeepEqual(mat.Fleet, fed.Fleet) {
			t.Errorf("workers=%d: lazily materialized fleet differs", workers)
		}
		if !reflect.DeepEqual(mat.Schedule, fed.Schedule) {
			t.Errorf("workers=%d: lazily materialized schedule differs", workers)
		}
		if !reflect.DeepEqual(mat.Truth, fed.Truth) {
			t.Errorf("workers=%d: lazily materialized fleet truth differs", workers)
		}
	}

	// The bounded build composes with the streaming/batch switch being
	// irrelevant to it: a streaming materialized build matches too.
	scfg := base
	scfg.Streaming = true
	scfg.Workers = 4
	stream := dataset.GenerateFederation(scfg)
	for j := range mat.Sites {
		if !reflect.DeepEqual(mat.Sites[j].Catalog.Records, stream.Sites[j].Catalog.Records) {
			t.Errorf("site %d: streaming materialized catalog differs from batch", j)
		}
	}
}

// Per-record hash sampling makes a thinned capture worker-count
// invariant: the kept set depends on record identities, never on the
// order sampling decisions are drawn in — the property that lets
// sampled captures fan out instead of falling back to one worker.
func TestSampledM2MDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := dataset.DefaultM2MConfig()
	cfg.Devices = 800
	cfg.SampleRate = 0.5
	cfg.Workers = 1
	serial := dataset.GenerateM2M(cfg)
	if len(serial.Transactions) == 0 {
		t.Fatal("sampled capture is empty")
	}
	cfg.Workers = 4
	par := dataset.GenerateM2M(cfg)
	if !reflect.DeepEqual(serial.Transactions, par.Transactions) {
		t.Error("workers=4 sampled capture differs from serial")
	}

	// The streaming path thins through the same per-record verdicts.
	var txs []signaling.Transaction
	dataset.StreamM2M(cfg, func(tx signaling.Transaction) { txs = append(txs, tx) })
	sort.SliceStable(txs, func(i, j int) bool { return txs[i].Time.Before(txs[j].Time) })
	if !reflect.DeepEqual(serial.Transactions, txs) {
		t.Error("streamed sampled capture differs from materialized serial")
	}
}
