// Federation walkthrough: one shared cellular world — GSMA catalog,
// roaming agreements, and a global IoT/M2M fleet — observed by three
// visited operators at once, the paper's Table 1/§5 situation. Each
// site builds its own devices-catalog through the full per-event
// measurement path and runs labeling and classification locally;
// the cross-site views then validate that every operator derives
// consistent roaming labels and (mostly) the same classes for the
// shared fleet.
//
// Run with:
//
//	go run ./examples/federation
package main

import (
	"fmt"

	"whereroam"
)

func main() {
	// A federation is a session observed from several visited MNOs;
	// no hosts means the default three-site footprint (UK, DE, SE).
	// Workers 0 = one per CPU; results are identical for any count.
	fed := whereroam.NewFederation(42, 0.15, 0)

	// The shared plane: every site joins the same GSMA catalog and
	// sees slices of the same fleet.
	data := fed.FederationData()
	fmt.Printf("world: %v\nshared fleet: %d devices\n\n", data.World, len(data.Fleet))

	// Each Site is a full single-MNO analysis — catalog, summaries,
	// labels, classification — built from that operator's own capture.
	for _, site := range fed.Sites() {
		inbound := 0
		for i := range site.Summaries() {
			sum := &site.Summaries()[i]
			if l, ok := site.Label(sum.Device); ok && l.InboundRoamer() {
				inbound++
			}
		}
		fmt.Printf("site %v: %d devices in catalog, %d fleet roamers present, %d inbound\n",
			site.Host(), len(site.Summaries()), len(site.Data.Present), inbound)
	}

	// Cross-site validation: the fed-* runners produce the per-site
	// breakdown, the label/class agreement matrices, and the
	// federated-vs-single-site classifier comparison.
	for _, id := range []string{"fed-sites", "fed-agreement", "fed-validation"} {
		r, _ := whereroam.ExperimentByID(id)
		fmt.Printf("\n%s\n", r.Run(fed))
	}
}
