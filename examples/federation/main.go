// Federation walkthrough: one shared cellular world — GSMA catalog,
// roaming agreements, a global IoT/M2M fleet and its per-day presence
// schedule — observed by three visited operators at once, the paper's
// Table 1/§5 situation. Each site builds its own devices-catalog
// through the full per-event measurement path and runs labeling and
// classification locally; the cross-site views then validate that
// every operator derives consistent roaming labels and (mostly) the
// same classes for the shared fleet. The federated SMIP and M2M
// planes are further views of the same fleet: the §7 smart-meter
// slice per site, and the §3/§6 signaling stream whose every
// transaction follows the schedule.
//
// Run with:
//
//	go run ./examples/federation
//	go run ./examples/federation -scale 0.05    # smaller and faster
package main

import (
	"flag"
	"fmt"

	"whereroam"
)

func main() {
	scale := flag.Float64("scale", 0.15, "population scale factor")
	flag.Parse()

	// A federation is a session observed from several visited MNOs;
	// no hosts means the default three-site footprint (UK, DE, SE).
	// Workers 0 = one per CPU; results are identical for any count.
	fed := whereroam.NewFederation(42, *scale, 0)

	// The shared plane: every site joins the same GSMA catalog and
	// sees slices of the same fleet — and the presence schedule makes
	// those slices mutually exclusive day by day.
	data := fed.FederationData()
	fmt.Printf("world: %v\nshared fleet: %d devices over %d days\n\n",
		data.World, len(data.Fleet), data.Days)

	// Each Site is a full single-MNO analysis — catalog, summaries,
	// labels, classification — built from that operator's own capture.
	for _, site := range fed.Sites() {
		inbound := 0
		for i := range site.Summaries() {
			sum := &site.Summaries()[i]
			if l, ok := site.Label(sum.Device); ok && l.InboundRoamer() {
				inbound++
			}
		}
		fmt.Printf("site %v: %d devices in catalog, %d fleet roamers present, %d inbound\n",
			site.Host(), len(site.Summaries()), len(site.Data.Present), inbound)
	}

	// The federated planes: the same fleet viewed as the §3/§6
	// signaling stream and as per-site §7 smart-meter datasets.
	m2m := fed.FederationM2M()
	fmt.Printf("\nfederated M2M plane: %d transactions from %d fleet devices\n",
		len(m2m.Transactions), len(m2m.Truth))
	for _, site := range fed.FederationSMIP().Sites {
		native := 0
		for _, isNative := range site.Native {
			if isNative {
				native++
			}
		}
		fmt.Printf("federated SMIP site %v: %d meters (%d native), %d catalog records\n",
			site.Host, len(site.Devices), native, len(site.Catalog.Records))
	}

	// Cross-site validation: the fed-* runners produce the per-site
	// breakdown, the label/class agreement matrices, the federated
	// classifier comparison and the plane summaries.
	for _, id := range []string{"fed-sites", "fed-agreement", "fed-validation", "fed-smip", "fed-m2m"} {
		r, _ := whereroam.ExperimentByID(id)
		fmt.Printf("\n%s\n", r.Run(fed))
	}
}
