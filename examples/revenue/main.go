// Revenue: quantify the paper's economic argument (§6/§9) — inbound
// M2M devices occupy the visited network's radio resources while
// generating almost none of the wholesale roaming revenue that pays
// for them. The settlement module prices the devices-catalog with
// 2019-era wholesale rates and contrasts occupancy with income.
//
// Run with:
//
//	go run ./examples/revenue
package main

import (
	"fmt"

	"whereroam"
	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/settlement"
)

func main() {
	sess := whereroam.NewSession(5, 0.25)
	mno := sess.MNO()
	sums := mno.Catalog.Summaries(mno.GSMA)

	// Classify and label the population first — settlement reports
	// are broken down by the classifier's output, exactly what an
	// operator would do.
	labeler := whereroam.NewLabeler(mno.Host, mno.MVNOs()...)
	results := whereroam.NewClassifier().Classify(sums)
	classOf := map[whereroam.DeviceID]whereroam.Class{}
	labelOf := map[whereroam.DeviceID]whereroam.Label{}
	for i := range sums {
		classOf[sums[i].Device] = results[i].Class
		labelOf[sums[i].Device] = labeler.LabelSummary(&sums[i])
	}

	rates := settlement.DefaultRates()
	st := settlement.Settle(mno.Catalog, rates)
	fmt.Print(st)

	fmt.Println("\noccupancy vs revenue (inbound roamers only):")
	ecos := settlement.EconomicsByGroup(mno.Catalog, rates, func(rec *catalog.DailyRecord) string {
		if !labelOf[rec.Device].InboundRoamer() {
			return ""
		}
		c := classOf[rec.Device]
		if c == core.ClassM2MMaybe {
			return ""
		}
		return c.String()
	})
	for _, e := range ecos {
		fmt.Printf("  %-6s %6d devices  %5.1f%% of events  %5.1f%% of revenue  %.4f EUR/device\n",
			e.Group, e.Devices, 100*e.EventShare, 100*e.RevenueShare, e.RevenuePerDevice)
	}
	fmt.Println("\nthe m2m row is the paper's point: the machines are there, the money is not.")
}
