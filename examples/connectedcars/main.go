// Connected cars: reproduce the Fig 12 vertical contrast — inbound
// roaming connected cars behave like roaming smartphones (mobile,
// chatty, data-hungry) while smart meters are stationary and quiet.
//
// Run with:
//
//	go run ./examples/connectedcars
package main

import (
	"fmt"

	"whereroam"
)

func main() {
	sess := whereroam.NewSession(11, 0.3)
	rep := mustRun(sess, "fig12")
	fmt.Println(rep)

	// Read the headline numbers back from the structured report.
	cars := rep.Value("cars_signaling_median")
	meters := rep.Value("meters_signaling_median")
	phones := rep.Value("smartphones_signaling_median")
	fmt.Printf("signaling per active day: cars %.0f vs meters %.0f (smartphones %.0f)\n",
		cars, meters, phones)
	fmt.Printf("cars generate %.0fx the signaling of meters — the Fig 12 gap\n", cars/meters)
}

func mustRun(sess *whereroam.Session, id string) *whereroam.Report {
	r, ok := whereroam.ExperimentByID(id)
	if !ok {
		panic("experiment missing: " + id)
	}
	return r.Run(sess)
}
