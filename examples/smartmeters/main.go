// Smart meters: reproduce the §7 contrast between SMIP-native smart
// meters (host-MNO SIMs in a dedicated IMSI range) and roaming meters
// on global IoT SIMs — connectivity persistence, signaling overhead,
// failures and radio technology.
//
// Run with:
//
//	go run ./examples/smartmeters
package main

import (
	"fmt"
	"sort"

	"whereroam"
)

func main() {
	sess := whereroam.NewSession(7, 0.25)
	smip := sess.SMIP()

	fmt.Printf("SMIP window: %d days from %s; %d meters (%d native, %d roaming)\n\n",
		smip.Days, smip.Start.Format("2006-01-02"),
		len(smip.Devices), countNative(smip, true), countNative(smip, false))

	// Aggregate per device: active days and signaling volume.
	type agg struct {
		days, events, failed int
	}
	perDev := map[whereroam.DeviceID]*agg{}
	for i := range smip.Catalog.Records {
		r := &smip.Catalog.Records[i]
		a := perDev[r.Device]
		if a == nil {
			a = &agg{}
			perDev[r.Device] = a
		}
		a.days++
		a.events += r.Events
		a.failed += r.FailedEvents
	}

	for _, cohort := range []bool{true, false} {
		name := "roaming"
		if cohort {
			name = "native"
		}
		var days []float64
		events, activeDays, withFail, n := 0, 0, 0, 0
		for _, d := range smip.Devices {
			if smip.Native[d.ID] != cohort {
				continue
			}
			n++
			a := perDev[d.ID]
			if a == nil {
				continue
			}
			days = append(days, float64(a.days))
			events += a.events
			activeDays += a.days
			if a.failed > 0 {
				withFail++
			}
		}
		sort.Float64s(days)
		med := days[len(days)/2]
		fmt.Printf("%-8s meters: median %2.0f active days of %d; %.1f signaling msgs/device/day; %.1f%% of devices with failures\n",
			name, med, smip.Days,
			float64(events)/float64(activeDays),
			100*float64(withFail)/float64(n))
	}

	// The provenance check of §4.4: roaming meters all share one home
	// operator and two module vendors.
	homes := map[whereroam.PLMN]bool{}
	vendors := map[string]bool{}
	for _, d := range smip.Devices {
		if smip.Native[d.ID] {
			continue
		}
		homes[d.Home] = true
		vendors[d.Info.Vendor] = true
	}
	fmt.Printf("\nroaming meter provenance: %d home operator(s), vendors: ", len(homes))
	names := make([]string, 0, len(vendors))
	for v := range vendors {
		names = append(names, v)
	}
	sort.Strings(names)
	fmt.Println(names)
}

func countNative(smip *whereroam.SMIPDataset, native bool) int {
	n := 0
	for _, d := range smip.Devices {
		if smip.Native[d.ID] == native {
			n++
		}
	}
	return n
}
