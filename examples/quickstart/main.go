// Quickstart: simulate a small visited-MNO population, run the
// paper's roaming labeler and M2M classifier over its devices-catalog,
// and check the result against the simulator's ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"whereroam"
)

func main() {
	// A session bundles the synthetic datasets; factor 0.2 keeps this
	// run under a couple of seconds (~6k devices).
	sess := whereroam.NewSession(42, 0.2)
	mno := sess.MNO()

	// The devices-catalog is the daily per-device aggregate an
	// operator builds from radio logs, CDRs/xDRs and the GSMA TAC
	// database (§4.1). Summaries collapse it per device.
	sums := mno.Catalog.Summaries(mno.GSMA)
	fmt.Printf("devices-catalog: %d records, %d devices over %d days\n\n",
		len(mno.Catalog.Records), len(sums), mno.Days)

	// Roaming labels (§4.2): who owns the SIM vs where it attaches.
	// The labeler must know the host's MVNOs to tell V:H from N:H.
	labeler := whereroam.NewLabeler(mno.Host, mno.MVNOs()...)
	labels := map[whereroam.Label]int{}
	for i := range sums {
		labels[labeler.LabelSummary(&sums[i])]++
	}
	fmt.Println("roaming labels:")
	for l, n := range labels {
		fmt.Printf("  %s  %5d devices (%.1f%%)\n", l, n, 100*float64(n)/float64(len(sums)))
	}

	// The multi-step M2M classifier (§4.3).
	results := whereroam.NewClassifier().Classify(sums)
	fmt.Println("\ndevice classes:")
	for class, n := range whereroam.Breakdown(results) {
		fmt.Printf("  %-10s %5d devices (%.1f%%)\n", class, n, 100*float64(n)/float64(len(results)))
	}

	// The simulator knows the truth — validate the classifier.
	v, err := whereroam.Validate(results, mno.Truth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", v)
}
