// Platform: analyze the §3 M2M-platform signaling dataset — HMNO
// footprint, per-device signaling load and VMNO switching — straight
// from the transaction stream, the way an analyst with the platform's
// probe data would.
//
// Run with:
//
//	go run ./examples/platform
package main

import (
	"fmt"
	"sort"

	"whereroam"
)

func main() {
	cfg := whereroam.DefaultM2MConfig()
	cfg.Devices = 3000
	cfg.Seed = 3
	ds := whereroam.GenerateM2M(cfg)

	fmt.Printf("platform dataset: %d transactions from %d IoT SIMs over %d days\n\n",
		len(ds.Transactions), len(ds.Truth), ds.Days)

	// Per-device aggregates from the raw stream.
	type agg struct {
		txs     int
		visited map[whereroam.PLMN]bool
	}
	perDev := map[whereroam.DeviceID]*agg{}
	perHome := map[whereroam.PLMN]int{}
	for i := range ds.Transactions {
		tx := &ds.Transactions[i]
		a := perDev[tx.Device]
		if a == nil {
			a = &agg{visited: map[whereroam.PLMN]bool{}}
			perDev[tx.Device] = a
			perHome[tx.SIM]++
		}
		a.txs++
		a.visited[tx.Visited] = true
	}

	fmt.Println("devices per home operator:")
	type row struct {
		plmn whereroam.PLMN
		n    int
	}
	rows := make([]row, 0, len(perHome))
	for p, n := range perHome {
		rows = append(rows, row{p, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for _, r := range rows {
		fmt.Printf("  %-8s %5d (%.1f%%)\n", r.plmn, r.n, 100*float64(r.n)/float64(len(perDev)))
	}

	// Signaling load distribution (Fig 3-left).
	loads := make([]float64, 0, len(perDev))
	multi := 0
	for _, a := range perDev {
		loads = append(loads, float64(a.txs))
		if len(a.visited) > 1 {
			multi++
		}
	}
	e := whereroam.NewECDF(loads)
	fmt.Printf("\nsignaling records per device: median %.0f, mean %.0f, p97 %.0f, max %.0f\n",
		e.Median(), e.Mean(), e.Quantile(0.97), e.Max())
	fmt.Printf("devices using more than one VMNO: %.1f%%\n",
		100*float64(multi)/float64(len(perDev)))
}
