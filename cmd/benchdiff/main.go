// Command benchdiff gates performance: it compares a fresh
// cmd/benchpipe run against the committed BENCH_pipeline.json
// baseline and exits non-zero when any ns/op or heap high-water mark
// regressed beyond tolerance — turning the perf artefact from an
// uploaded curiosity into a build-failing check.
//
// The comparison is environment-aware: when the baseline and the
// candidate ran at different GOMAXPROCS, speedup ratios and parallel
// artefacts are skipped (they measure the machine, not the code)
// while serial ns/op and heap peaks stay gated under the configured
// tolerances.
//
// Usage:
//
//	benchpipe -scale 0.16 -out BENCH_fresh.json
//	benchdiff -candidate BENCH_fresh.json                    # vs BENCH_pipeline.json
//	benchdiff -baseline old.json -candidate new.json -tolerance 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"whereroam/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		baseline = flag.String("baseline", "BENCH_pipeline.json", "committed baseline report")
		cand     = flag.String("candidate", "", "fresh benchpipe report to gate (required)")
		nsTol    = flag.Float64("tolerance", benchfmt.DefaultTolerance().NsFrac, "allowed relative ns/op growth (0.30 = +30%)")
		memTol   = flag.Float64("mem-tolerance", benchfmt.DefaultTolerance().MemFrac, "allowed relative heap-peak growth")
		heapMiB  = flag.Int64("min-heap-delta-mib", benchfmt.DefaultTolerance().MinHeapDeltaBytes>>20, "ignore heap-peak growth below this many MiB (sampling noise floor)")
	)
	flag.Parse()
	if *cand == "" {
		log.Fatal("-candidate is required (run cmd/benchpipe first)")
	}

	base, err := benchfmt.Load(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := benchfmt.Load(*cand)
	if err != nil {
		log.Fatal(err)
	}

	if base.GoMaxProcs != fresh.GoMaxProcs {
		// Make the reduced gate impossible to miss in CI logs: on a
		// core-count mismatch only serial artefacts, heap peaks and
		// machine-independent ratios are gated.
		fmt.Fprintf(os.Stderr,
			"benchdiff: NOTE: baseline is GOMAXPROCS=%d, candidate is GOMAXPROCS=%d — speedups not gated.\n"+
				"benchdiff: refresh the committed baseline on a matching runner via the bench-baseline workflow_dispatch job.\n",
			base.GoMaxProcs, fresh.GoMaxProcs)
	}

	tol := benchfmt.Tolerance{NsFrac: *nsTol, MemFrac: *memTol, MinHeapDeltaBytes: *heapMiB << 20}
	diff := benchfmt.Compare(base, fresh, tol)
	fmt.Print(diff)

	if regs := diff.Regressions(); len(regs) > 0 {
		log.Printf("%d regression(s) beyond tolerance (ns +%.0f%%, heap +%.0f%%)", len(regs), *nsTol*100, *memTol*100)
		os.Exit(1)
	}
	if len(diff.Findings) == 0 {
		// A gate that compared nothing is a misconfigured gate (scale
		// mismatch, disjoint artefact sets) — fail it rather than
		// passing silently.
		log.Fatal("no comparisons were executed; see the skips above")
	}
	fmt.Printf("benchdiff: no regressions beyond tolerance (%d comparisons, %d skipped)\n",
		len(diff.Findings), len(diff.Skipped))
}
