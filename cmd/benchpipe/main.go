// Command benchpipe measures the serial-vs-parallel pipeline pairs
// (synthesis → catalog → classification, the raw per-event capture
// path, and its streaming-ingest twin) and writes the results as
// BENCH_pipeline.json (schema: internal/benchfmt), the
// perf-trajectory artefact cmd/benchdiff gates CI against. Besides
// ns/op it records each configuration's heap high-water mark, which
// is where the streaming path earns its keep: the batch capture's
// peak grows linearly with the capture while the streaming ingest
// stays flat at the router's channel windows. The gen_fleet pair
// replays that comparison for synthesis itself at 10x the benchmark
// scale — GenerateMNO materializing the whole fleet and catalog
// versus StreamMNO draining into a sink — and the resulting
// "gen_heap" peak ratio is gated machine-independently.
//
// Usage:
//
//	benchpipe                       # defaults: scale 0.32, all cores
//	benchpipe -scale 1.0 -out BENCH_pipeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"whereroam/internal/benchfmt"
	"whereroam/internal/catalog"
	"whereroam/internal/cdrs"
	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/serve"
	"whereroam/internal/store"
)

// heapPeak runs fn once and returns the peak heap growth it caused
// (benchfmt.StartHeapWatch's contract: max HeapAlloc sample during fn
// minus the post-GC pre-run baseline).
func heapPeak(fn func()) int64 {
	stop := benchfmt.StartHeapWatch()
	fn()
	return stop()
}

func measure(workers int, fn func(workers int)) benchfmt.Artefact {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn(workers)
		}
	})
	return benchfmt.Artefact{
		NsPerOp:       r.NsPerOp(),
		AllocsPerOp:   r.AllocsPerOp(),
		BytesPerOp:    r.AllocedBytesPerOp(),
		Workers:       workers,
		Iterations:    r.N,
		Seconds:       float64(r.NsPerOp()) / 1e9,
		HeapPeakBytes: heapPeak(func() { fn(workers) }),
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchpipe: ")
	var (
		scale = flag.Float64("scale", 0.32, "population scale factor per iteration")
		out   = flag.String("out", "BENCH_pipeline.json", "output path")
	)
	flag.Parse()

	mnoPipeline := func(workers int) {
		cfg := dataset.DefaultMNOConfig()
		cfg.Devices = int(float64(cfg.Devices) * *scale)
		cfg.Workers = workers
		ds := dataset.GenerateMNO(cfg)
		sums := ds.Catalog.SummariesWorkers(ds.GSMA, workers)
		if res := core.NewClassifier().ClassifyWorkers(sums, workers); len(res) == 0 {
			log.Fatal("pipeline produced no results")
		}
	}
	rawSMIP := func(workers int) dataset.SMIPConfig {
		cfg := dataset.DefaultSMIPConfig()
		cfg.NativeMeters = int(float64(cfg.NativeMeters) * *scale / 4)
		cfg.RoamingMeters = int(float64(cfg.RoamingMeters) * *scale / 4)
		cfg.Workers = workers
		return cfg
	}
	rawCapture := func(workers int) {
		if ds, _ := dataset.GenerateSMIPRaw(rawSMIP(workers)); len(ds.Catalog.Records) == 0 {
			log.Fatal("raw capture built an empty catalog")
		}
	}
	streamCapture := func(workers int) {
		if ds := dataset.GenerateSMIPStreaming(rawSMIP(workers)); len(ds.Catalog.Records) == 0 {
			log.Fatal("streaming capture built an empty catalog")
		}
	}

	// Store replay pair: archive the capture's CDR/xDR plane once, in
	// the mediation-feed shape (time-ordered, so segments are
	// day-correlated), then measure the full and the day-pruned
	// catalog rebuild — the "archived once, analyzed many times"
	// workload the store exists for.
	archDir, err := os.MkdirTemp("", "benchpipe-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(archDir)
	tmpRoot := archDir
	archCfg := rawSMIP(0)
	_, archRaw := dataset.GenerateSMIPRaw(archCfg)
	archDir = filepath.Join(archDir, "feed")
	aw, err := store.NewWriter(archDir, store.Meta{Host: archCfg.Host, Start: archCfg.Start, Days: archCfg.Days}, 4096)
	if err != nil {
		log.Fatal(err)
	}
	for i := range archRaw.Records {
		if err := aw.Append(archRaw.Records[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		log.Fatal(err)
	}
	rply, err := store.Open(archDir)
	if err != nil {
		log.Fatal(err)
	}
	replay := func(q store.Query) func(int) {
		return func(workers int) {
			cat, _, err := rply.Replay(q, workers)
			if err != nil || len(cat.Records) == 0 {
				log.Fatalf("store replay failed: %v (%d records)", err, len(cat.Records))
			}
		}
	}
	replayFull := replay(store.Query{})
	replayPruned := replay(store.Query{}.Days(archCfg.Days/2, archCfg.Days/2+1))

	rep := benchfmt.Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      *scale,
		Artefacts:  map[string]benchfmt.Artefact{},
		Speedups:   map[string]float64{},
		MemRatios:  map[string]float64{},
		Ratios:     map[string]float64{},
	}
	for _, pair := range []struct {
		name string
		fn   func(int)
	}{
		{"pipeline", mnoPipeline},
		{"raw_capture", rawCapture},
		{"raw_capture_stream", streamCapture},
		{"store_replay_full", replayFull},
		{"store_replay_pruned", replayPruned},
	} {
		serial := measure(1, pair.fn)
		parallel := measure(0, pair.fn)
		parallel.Workers = rep.GoMaxProcs
		rep.Artefacts[pair.name+"_serial"] = serial
		rep.Artefacts[pair.name+"_parallel"] = parallel
		rep.Speedups[pair.name] = float64(serial.NsPerOp) / float64(parallel.NsPerOp)
		log.Printf("%s: serial %v ns/op (peak %d MiB), parallel(%d) %v ns/op (peak %d MiB), speedup %.2fx",
			pair.name, serial.NsPerOp, serial.HeapPeakBytes>>20,
			rep.GoMaxProcs, parallel.NsPerOp, parallel.HeapPeakBytes>>20,
			rep.Speedups[pair.name])
	}

	// Out-of-core generation pair, measured at 10x the benchmark scale
	// — the population the materialized path starts to hurt at. Both
	// sides run once at full parallelism with the heap sampler on; the
	// out-of-core side streams into a counting sink, so its peak is
	// the counting pre-pass plus the bounded in-flight window rather
	// than the whole fleet and catalog.
	genCfg := dataset.DefaultMNOConfig()
	genCfg.Devices = int(float64(genCfg.Devices) * *scale * 10)
	genCfg.Workers = 0
	genMeasure := func(fn func()) benchfmt.Artefact {
		var ns int64
		peak := heapPeak(func() {
			t0 := time.Now()
			fn()
			ns = time.Since(t0).Nanoseconds()
		})
		return benchfmt.Artefact{
			NsPerOp:       ns,
			Workers:       rep.GoMaxProcs,
			Iterations:    1,
			Seconds:       float64(ns) / 1e9,
			HeapPeakBytes: peak,
		}
	}
	genMat := genMeasure(func() {
		ds := dataset.GenerateMNO(genCfg)
		if len(ds.Catalog.Records) == 0 {
			log.Fatal("materialized generation built an empty catalog")
		}
		runtime.KeepAlive(ds)
	})
	genOOC := genMeasure(func() {
		var recs int64
		out := dataset.StreamMNO(genCfg, dataset.MNOSink{
			Record: func(catalog.DailyRecord) { recs++ },
		})
		if recs == 0 || out.Records != recs {
			log.Fatalf("out-of-core generation streamed %d records (reported %d)", recs, out.Records)
		}
	})
	rep.Artefacts["gen_fleet_materialized"] = genMat
	rep.Artefacts["gen_fleet_outofcore"] = genOOC
	if genOOC.HeapPeakBytes > 0 {
		// Peak-over-peak, bigger is better: how many times more heap
		// the materialized build needs than the out-of-core one for
		// the same output. Machine-independent (same process, same
		// population), so it belongs in Ratios and stays gated across
		// a GOMAXPROCS mismatch.
		rep.Ratios["gen_heap"] = float64(genMat.HeapPeakBytes) / float64(genOOC.HeapPeakBytes)
		log.Printf("gen at 10x: materialized peak %d MiB, out-of-core peak %d MiB, ratio %.2fx",
			genMat.HeapPeakBytes>>20, genOOC.HeapPeakBytes>>20, rep.Ratios["gen_heap"])
	}

	// Pruning effectiveness, from the SERIAL pair so the ratio is
	// machine-independent (full and pruned decode the same archive in
	// the same process; core count cancels out). It goes into Ratios,
	// which benchdiff gates even across a GOMAXPROCS mismatch — so an
	// index regression that stops segments from being skipped fails CI
	// no matter what machine recorded the baseline.
	fullArt := rep.Artefacts["store_replay_full_serial"]
	prunedArt := rep.Artefacts["store_replay_pruned_serial"]
	if prunedArt.NsPerOp > 0 {
		rep.Ratios["store_prune"] = float64(fullArt.NsPerOp) / float64(prunedArt.NsPerOp)
		log.Printf("store pruned replay: %.2fx faster than full replay (serial pair)",
			rep.Ratios["store_prune"])
	}

	// Compaction effectiveness: archive the same feed in tap order
	// (device-major, the worst case for the day index — every segment
	// spans the whole window), compact it into the time-ordered
	// mediation shape, and compare the day-pruned replay on each. The
	// ratio is a within-process serial pair, so it is
	// machine-independent and gated across GOMAXPROCS mismatches.
	tapRecs := make([]int, len(archRaw.Records))
	for i := range tapRecs {
		tapRecs[i] = i
	}
	sort.SliceStable(tapRecs, func(a, b int) bool {
		return uint64(archRaw.Records[tapRecs[a]].Device) < uint64(archRaw.Records[tapRecs[b]].Device)
	})
	tapDir := filepath.Join(tmpRoot, "tap")
	tw, err := store.NewWriter(tapDir, store.Meta{Host: archCfg.Host, Start: archCfg.Start, Days: archCfg.Days}, 4096)
	if err != nil {
		log.Fatal(err)
	}
	for _, i := range tapRecs {
		if err := tw.Append(archRaw.Records[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	compactDir := filepath.Join(tmpRoot, "compacted")
	if _, err := store.Compact(compactDir, []string{tapDir}, store.CompactOptions{SegmentRecords: 4096}); err != nil {
		log.Fatal(err)
	}
	dayQ := store.Query{}.Days(archCfg.Days/2, archCfg.Days/2+1)
	replayOn := func(dir string, q store.Query) func(int) {
		r, err := store.Open(dir)
		if err != nil {
			log.Fatal(err)
		}
		return func(workers int) {
			cat, _, err := r.Replay(q, workers)
			if err != nil || len(cat.Records) == 0 {
				log.Fatalf("store replay of %s failed: %v (%d records)", dir, err, len(cat.Records))
			}
		}
	}
	tapPruned := measure(1, replayOn(tapDir, dayQ))
	compPruned := measure(1, replayOn(compactDir, dayQ))
	rep.Artefacts["store_replay_tap_pruned_serial"] = tapPruned
	rep.Artefacts["store_replay_compacted_pruned_serial"] = compPruned
	if compPruned.NsPerOp > 0 {
		rep.Ratios["store_compact"] = float64(tapPruned.NsPerOp) / float64(compPruned.NsPerOp)
		log.Printf("store compacted day replay: %.2fx faster than tap-order day replay (serial pair)",
			rep.Ratios["store_compact"])
	}

	// Bloom pruning effectiveness, on the shape range indexes cannot
	// help with: each device confined to one window day, written in
	// time order with small segments — every segment's device range
	// spans nearly the whole hash space, but each segment holds only
	// its day's devices. An exact-device replay with blooms skips the
	// other days' segments; without, it decodes them all. The 2x floor
	// is enforced here: below it the per-segment filters are not
	// earning their footer bytes.
	bloomDir := filepath.Join(tmpRoot, "bloomshape")
	bw, err := store.NewWriter(bloomDir, store.Meta{Host: archCfg.Host, Start: archCfg.Start, Days: archCfg.Days}, 256)
	if err != nil {
		log.Fatal(err)
	}
	var bloomDevs []cdrs.Record
	seenDev := map[uint64]bool{}
	for i := range archRaw.Records {
		rec := &archRaw.Records[i]
		day := int(rec.Time.Sub(archCfg.Start).Hours() / 24)
		if day != int(uint64(rec.Device)%uint64(archCfg.Days)) {
			continue
		}
		if err := bw.Append(*rec); err != nil {
			log.Fatal(err)
		}
		if !seenDev[uint64(rec.Device)] {
			seenDev[uint64(rec.Device)] = true
			bloomDevs = append(bloomDevs, *rec)
		}
	}
	if err := bw.Close(); err != nil {
		log.Fatal(err)
	}
	if len(bloomDevs) < 32 || bw.Segments() < 8 {
		log.Fatalf("bloom fixture too small: %d devices in %d segments", len(bloomDevs), bw.Segments())
	}
	bloomDevs = bloomDevs[:32]
	br, err := store.Open(bloomDir)
	if err != nil {
		log.Fatal(err)
	}
	if _, stats, err := br.Replay(store.Query{}.Device(bloomDevs[0].Device), 1); err != nil || stats.SegmentsPrunedBloom == 0 {
		log.Fatalf("bloom fixture never bloom-prunes (err %v, %d pruned by bloom of %d)",
			err, stats.SegmentsPrunedBloom, stats.SegmentsTotal)
	}
	bloomLookups := func(base store.Query) func(int) {
		return func(workers int) {
			for i := range bloomDevs {
				cat, _, err := br.Replay(base.Device(bloomDevs[i].Device), workers)
				if err != nil || len(cat.Records) == 0 {
					log.Fatalf("bloom lookup failed: %v (%d records)", err, len(cat.Records))
				}
			}
		}
	}
	withBloom := measure(1, bloomLookups(store.Query{}))
	withoutBloom := measure(1, bloomLookups(store.Query{}.WithoutBloom()))
	rep.Artefacts["store_device_lookup_bloom_serial"] = withBloom
	rep.Artefacts["store_device_lookup_nobloom_serial"] = withoutBloom
	rep.Ratios["store_prune_bloom"] = float64(withoutBloom.NsPerOp) / float64(withBloom.NsPerOp)
	log.Printf("store bloom device lookup: %.2fx faster than range-only (serial pair)",
		rep.Ratios["store_prune_bloom"])
	if rep.Ratios["store_prune_bloom"] < 2 {
		log.Fatalf("store_prune_bloom ratio %.2f below the 2x floor — per-segment blooms are not pruning",
			rep.Ratios["store_prune_bloom"])
	}

	// Manifest-v2 seal cost must stay O(1) in store size: append the
	// same feed through many small segments and compare the first
	// half's wall time with the second half's. A flat seal keeps the
	// ratio near 1; a regression to v1's full-manifest rewrite makes
	// the second half grow with segment count and the ratio shrink,
	// which the bigger-is-better gate catches.
	sealDir := filepath.Join(tmpRoot, "sealflat")
	sw, err := store.NewWriter(sealDir, store.Meta{Host: archCfg.Host, Start: archCfg.Start, Days: archCfg.Days}, 64)
	if err != nil {
		log.Fatal(err)
	}
	const sealSegs = 256
	half := sealSegs / 2 * 64
	sealHalf := func(offset int) int64 {
		t0 := time.Now()
		for i := 0; i < half; i++ {
			if err := sw.Append(archRaw.Records[(offset+i)%len(archRaw.Records)]); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(t0).Nanoseconds()
	}
	firstNs := sealHalf(0)
	secondNs := sealHalf(half)
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}
	rep.Ratios["store_seal_flat"] = float64(firstNs) / float64(secondNs)
	log.Printf("store seal cost: first %d segments %v ns, next %d segments %v ns, flatness %.2f",
		sealSegs/2, firstNs, sealSegs/2, secondNs, rep.Ratios["store_seal_flat"])

	// Serving layer: mount the same archive in an in-process roamd
	// read model (serial fills, so the artefacts stay gated against a
	// GOMAXPROCS=1 baseline) and measure warm request latency for the
	// two hot endpoints plus the cache's cold-vs-hit speedup. Warm
	// latencies are sampled after pre-warming every slice the sample
	// set touches, so the percentiles measure the served (cached) path
	// rather than a mix of replays and hits.
	srv := serve.New(serve.Config{Workers: 1})
	if err := srv.Mount("feed", archDir); err != nil {
		log.Fatal(err)
	}
	handler := srv.Handler()
	serveGet := func(path string) ([]byte, int64) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		t0 := time.Now()
		handler.ServeHTTP(rec, req)
		ns := time.Since(t0).Nanoseconds()
		if rec.Code != http.StatusOK {
			log.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body)
		}
		return rec.Body.Bytes(), ns
	}
	var devList struct {
		Devices []string `json:"devices"`
	}
	body, _ := serveGet("/v1/sites/feed/devices?limit=64")
	if err := json.Unmarshal(body, &devList); err != nil || len(devList.Devices) == 0 {
		log.Fatalf("serve device listing failed: %v (%d devices)", err, len(devList.Devices))
	}
	days := srv.Sites()[0].Days
	serveArtefact := func(name string, samples int, path func(i int) string) {
		for i := 0; i < samples; i++ { // pre-warm every slice key
			serveGet(path(i))
		}
		lat := make([]int64, samples)
		var total int64
		for i := range lat {
			_, ns := serveGet(path(i))
			lat[i] = ns
			total += ns
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) int64 { // nearest-rank
			i := int(p*float64(samples)+0.5) - 1
			if i < 0 {
				i = 0
			}
			if i >= samples {
				i = samples - 1
			}
			return lat[i]
		}
		art := benchfmt.Artefact{
			NsPerOp:    total / int64(samples),
			P50Ns:      pct(0.50),
			P99Ns:      pct(0.99),
			QPS:        float64(samples) * 1e9 / float64(total),
			Workers:    1,
			Iterations: samples,
			Seconds:    float64(total) / 1e9,
		}
		rep.Artefacts[name] = art
		log.Printf("%s: p50 %d ns, p99 %d ns, %.0f qps (warm, serial)",
			name, art.P50Ns, art.P99Ns, art.QPS)
	}
	serveArtefact("serve_device_lookup", 2000, func(i int) string {
		return "/v1/sites/feed/devices/" + devList.Devices[i%len(devList.Devices)]
	})
	serveArtefact("serve_day_slice", 1000, func(i int) string {
		lo := i % days
		hi := lo + 1
		if hi >= days {
			hi = days - 1
			lo = hi - 1
		}
		return fmt.Sprintf("/v1/sites/feed/days?lo=%d&hi=%d", lo, hi)
	})

	// Cold-vs-hit ratio: the whole point of the slice cache is that a
	// cold stats request replays the archive while a warm one reads an
	// immutable slice. Minimum over a few runs on each side keeps the
	// estimator stable; the ratio is within-run and machine-independent,
	// so it goes into Ratios (gated across GOMAXPROCS mismatches) with a
	// hard 5x floor enforced here.
	var coldNs int64
	for i := 0; i < 3; i++ {
		fresh := serve.New(serve.Config{Workers: 1})
		if err := fresh.Mount("feed", archDir); err != nil {
			log.Fatal(err)
		}
		fh := fresh.Handler()
		req := httptest.NewRequest(http.MethodGet, "/v1/sites/feed/stats", nil)
		rec := httptest.NewRecorder()
		t0 := time.Now()
		fh.ServeHTTP(rec, req)
		ns := time.Since(t0).Nanoseconds()
		if rec.Code != http.StatusOK {
			log.Fatalf("cold stats: status %d: %s", rec.Code, rec.Body)
		}
		if coldNs == 0 || ns < coldNs {
			coldNs = ns
		}
	}
	var hitNs int64
	for i := 0; i < 200; i++ {
		if _, ns := serveGet("/v1/sites/feed/stats"); hitNs == 0 || ns < hitNs {
			hitNs = ns
		}
	}
	rep.Ratios["serve_cache"] = float64(coldNs) / float64(hitNs)
	log.Printf("serve cache: cold %d ns vs hit %d ns, ratio %.1fx", coldNs, hitNs, rep.Ratios["serve_cache"])
	if rep.Ratios["serve_cache"] < 5 {
		log.Fatalf("serve_cache ratio %.2f below the 5x floor — the slice cache is not earning its keep",
			rep.Ratios["serve_cache"])
	}

	// The headline memory comparison: the streaming ingest's peak
	// against the materialized capture's, both at full parallelism.
	batch := rep.Artefacts["raw_capture_parallel"]
	stream := rep.Artefacts["raw_capture_stream_parallel"]
	if batch.HeapPeakBytes > 0 {
		rep.MemRatios["raw_capture_stream_vs_batch"] = float64(stream.HeapPeakBytes) / float64(batch.HeapPeakBytes)
		log.Printf("streaming peak / batch peak = %.3f (%d MiB vs %d MiB)",
			rep.MemRatios["raw_capture_stream_vs_batch"],
			stream.HeapPeakBytes>>20, batch.HeapPeakBytes>>20)
	}

	if err := rep.Write(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (GOMAXPROCS=%d)\n", *out, rep.GoMaxProcs)
}
