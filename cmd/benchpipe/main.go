// Command benchpipe measures the serial-vs-parallel pipeline pair
// (synthesis → catalog → classification, plus the raw per-event
// capture path) and writes the results as BENCH_pipeline.json, the
// perf-trajectory artefact future changes compare against.
//
// Usage:
//
//	benchpipe                       # defaults: scale 0.32, all cores
//	benchpipe -scale 1.0 -out BENCH_pipeline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"

	"whereroam/internal/core"
	"whereroam/internal/dataset"
)

// Artefact is one measured benchmark configuration.
type Artefact struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	Seconds     float64 `json:"seconds_per_op"`
}

// Report is the BENCH_pipeline.json schema.
type Report struct {
	GoMaxProcs int                 `json:"go_maxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Scale      float64             `json:"scale"`
	Artefacts  map[string]Artefact `json:"artefacts"`
	// Speedups maps pair names to parallel-over-serial throughput
	// ratios (1.0 = parity; > 1 means the sharded path wins).
	Speedups map[string]float64 `json:"speedups"`
}

func measure(workers int, fn func(workers int)) Artefact {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn(workers)
		}
	})
	return Artefact{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Workers:     workers,
		Iterations:  r.N,
		Seconds:     float64(r.NsPerOp()) / 1e9,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchpipe: ")
	var (
		scale = flag.Float64("scale", 0.32, "population scale factor per iteration")
		out   = flag.String("out", "BENCH_pipeline.json", "output path")
	)
	flag.Parse()

	mnoPipeline := func(workers int) {
		cfg := dataset.DefaultMNOConfig()
		cfg.Devices = int(float64(cfg.Devices) * *scale)
		cfg.Workers = workers
		ds := dataset.GenerateMNO(cfg)
		sums := ds.Catalog.SummariesWorkers(ds.GSMA, workers)
		if res := core.NewClassifier().ClassifyWorkers(sums, workers); len(res) == 0 {
			log.Fatal("pipeline produced no results")
		}
	}
	rawCapture := func(workers int) {
		cfg := dataset.DefaultSMIPConfig()
		cfg.NativeMeters = int(float64(cfg.NativeMeters) * *scale / 4)
		cfg.RoamingMeters = int(float64(cfg.RoamingMeters) * *scale / 4)
		cfg.Workers = workers
		if ds, _ := dataset.GenerateSMIPRaw(cfg); len(ds.Catalog.Records) == 0 {
			log.Fatal("raw capture built an empty catalog")
		}
	}

	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      *scale,
		Artefacts:  map[string]Artefact{},
		Speedups:   map[string]float64{},
	}
	for _, pair := range []struct {
		name string
		fn   func(int)
	}{
		{"pipeline", mnoPipeline},
		{"raw_capture", rawCapture},
	} {
		serial := measure(1, pair.fn)
		parallel := measure(0, pair.fn)
		parallel.Workers = rep.GoMaxProcs
		rep.Artefacts[pair.name+"_serial"] = serial
		rep.Artefacts[pair.name+"_parallel"] = parallel
		rep.Speedups[pair.name] = float64(serial.NsPerOp) / float64(parallel.NsPerOp)
		log.Printf("%s: serial %v ns/op, parallel(%d) %v ns/op, speedup %.2fx",
			pair.name, serial.NsPerOp, rep.GoMaxProcs, parallel.NsPerOp, rep.Speedups[pair.name])
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (GOMAXPROCS=%d)\n", *out, rep.GoMaxProcs)
}
