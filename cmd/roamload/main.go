// Command roamload drives a live roamd with a closed-loop mixed
// workload — zipfian-popular device lookups, day-slice summaries,
// stats, analysis and comparison queries — and reports p50/p99
// latency and throughput. With -out it writes the measurements as a
// benchfmt report so cmd/benchdiff can gate serving performance.
//
// Usage:
//
//	roamload -addr http://127.0.0.1:8080 [-duration 5s] [-concurrency 4]
//	         [-seed 1] [-zipf 1.2] [-min-qps 0] [-out BENCH.json]
//
// The exit status is non-zero when any request returned a 4xx/5xx or
// the measured qps fell below -min-qps, so CI smoke jobs can assert
// "non-zero qps, zero 5xx" from the exit code alone.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"whereroam/internal/benchfmt"
	"whereroam/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roamload: ")
	var (
		addr        = flag.String("addr", "", "base URL of the roamd under test (required)")
		duration    = flag.Duration("duration", 5*time.Second, "load duration")
		concurrency = flag.Int("concurrency", 4, "closed-loop workers")
		seed        = flag.Int64("seed", 1, "request-stream seed")
		zipf        = flag.Float64("zipf", 1.2, "zipfian device-popularity skew (>1)")
		minQPS      = flag.Float64("min-qps", 0, "fail when measured qps falls below this")
		out         = flag.String("out", "", "write a benchfmt report here")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "usage: roamload -addr URL [-duration 5s] [-concurrency 4] [-min-qps 0] [-out BENCH.json]")
		os.Exit(2)
	}

	res, err := serve.RunLoad(serve.LoadConfig{
		BaseURL:     *addr,
		Concurrency: *concurrency,
		Duration:    *duration,
		Seed:        *seed,
		ZipfS:       *zipf,
	})
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("%d requests in %.2fs → %.1f qps (5xx=%d 4xx=%d transport=%d)",
		res.Requests, res.Seconds, res.QPS, res.Errors5xx, res.Errors4xx, res.TransportErrors)
	ops := make([]string, 0, len(res.Ops))
	for op := range res.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		o := res.Ops[op]
		log.Printf("  %-14s count=%-6d p50=%s p99=%s mean=%s",
			o.Op, o.Count, time.Duration(o.P50Ns), time.Duration(o.P99Ns), time.Duration(o.MeanNs))
	}

	// Cross-check the client-observed latency against the daemon's own
	// histogram. The scrape quietly skips when the daemon runs with
	// -metrics=false (ok is false, no error).
	if d, ok, err := serve.ScrapeHistogramQuantile(nil, *addr, "roamd_http_latency_seconds", 0.99); err != nil {
		log.Printf("server-side p99 scrape failed: %v", err)
	} else if ok {
		log.Printf("server-side p99 (roamd_http_latency_seconds): %s", d)
	}

	if *out != "" {
		rep := benchfmt.NewReport(1)
		for _, op := range ops {
			o := res.Ops[op]
			if o.Count == 0 {
				continue
			}
			rep.Artefacts["load_"+op] = benchfmt.Artefact{
				NsPerOp:    o.MeanNs,
				P50Ns:      o.P50Ns,
				P99Ns:      o.P99Ns,
				QPS:        float64(o.Count) / res.Seconds,
				Workers:    *concurrency,
				Iterations: int(o.Count),
				Seconds:    res.Seconds,
			}
		}
		if err := rep.Write(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}

	failed := false
	if res.Errors5xx > 0 || res.Errors4xx > 0 || res.TransportErrors > 0 {
		log.Printf("FAIL: request errors (5xx=%d 4xx=%d transport=%d)",
			res.Errors5xx, res.Errors4xx, res.TransportErrors)
		failed = true
	}
	if res.Requests == 0 || res.QPS <= 0 {
		log.Print("FAIL: no completed requests")
		failed = true
	}
	if *minQPS > 0 && res.QPS < *minQPS {
		log.Printf("FAIL: qps %.1f below floor %.1f", res.QPS, *minQPS)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
