// Command smipsim synthesizes the §7 SMIP smart-meter dataset and
// writes its devices-catalog as CSV. With -raw it exercises the full
// per-event measurement path (radio events and CDRs through probe
// taps into the catalog builder) instead of the direct aggregate
// generator; -stream runs the same measurement path through the
// bounded-memory ingest router, building the catalog while the
// capture is generated — bit-identical to -raw, without ever holding
// the event streams.
//
// Usage:
//
//	smipsim -native 20000 -roaming 12000 -out smip.csv
//	smipsim -native 2000 -roaming 1500 -raw -out smip.csv
//	smipsim -native 50000 -roaming 30000 -stream -out smip.csv
//	smipsim -nbiot 0.5    # §8: half the roaming fleet on NB-IoT
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"whereroam/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smipsim: ")
	var (
		native  = flag.Int("native", 20000, "SMIP-native meters")
		roaming = flag.Int("roaming", 12000, "roaming meters on global IoT SIMs")
		days    = flag.Int("days", 26, "observation window in days")
		seed    = flag.Uint64("seed", 1, "generator seed")
		nbiot   = flag.Float64("nbiot", 0, "fraction of roaming meters migrated to NB-IoT")
		raw     = flag.Bool("raw", false, "generate via the per-event probe+builder pipeline (materialized capture)")
		stream  = flag.Bool("stream", false, "generate via the bounded-memory streaming ingest path (implies the per-event pipeline)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "raw-capture worker pool size (output is identical for any value)")
		out     = flag.String("out", "smip.csv", "devices-catalog output path")
	)
	flag.Parse()

	cfg := dataset.DefaultSMIPConfig()
	cfg.NativeMeters = *native
	cfg.RoamingMeters = *roaming
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.NBIoTMigration = *nbiot
	cfg.Workers = *workers

	start := time.Now()
	var ds *dataset.SMIPDataset
	switch {
	case *stream:
		ds = dataset.GenerateSMIPStreaming(cfg)
		log.Printf("streaming pipeline: catalog built with no materialized capture")
	case *raw:
		var streams *dataset.RawStreams
		ds, streams = dataset.GenerateSMIPRaw(cfg)
		log.Printf("raw pipeline: %d radio events, %d CDRs/xDRs",
			len(streams.Radio), len(streams.Records))
	default:
		ds = dataset.GenerateSMIP(cfg)
	}
	log.Printf("generated %d catalog records for %d meters in %v",
		len(ds.Catalog.Records), len(ds.Devices), time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Catalog.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	nNB := len(ds.NBIoT)
	fmt.Printf("wrote %s (%d records; %d native, %d roaming, %d on NB-IoT)\n",
		*out, len(ds.Catalog.Records), *native, *roaming, nNB)
}
