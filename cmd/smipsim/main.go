// Command smipsim synthesizes the §7 SMIP smart-meter dataset and
// writes its devices-catalog as CSV. With -raw it exercises the full
// per-event measurement path (radio events and CDRs through probe
// taps into the catalog builder) instead of the direct aggregate
// generator; -stream runs the same measurement path through the
// bounded-memory ingest router, building the catalog while the
// capture is generated — bit-identical to -raw, without ever holding
// the event streams.
//
// With -archive the streaming path additionally persists the CDR/xDR
// feed to a segmented archive (internal/store) while the catalog
// builds — persist-and-ingest in one pass; with -replay the catalog
// is instead rebuilt from such an archive, no generation at all.
//
// Usage:
//
//	smipsim -native 20000 -roaming 12000 -out smip.csv
//	smipsim -native 2000 -roaming 1500 -raw -out smip.csv
//	smipsim -native 50000 -roaming 30000 -stream -out smip.csv
//	smipsim -stream -archive /data/smip-feed -out smip.csv
//	smipsim -replay /data/smip-feed -out smip-replayed.csv
//	smipsim -nbiot 0.5    # §8: half the roaming fleet on NB-IoT
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"whereroam/internal/dataset"
	"whereroam/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smipsim: ")
	var (
		native  = flag.Int("native", 20000, "SMIP-native meters")
		roaming = flag.Int("roaming", 12000, "roaming meters on global IoT SIMs")
		days    = flag.Int("days", 26, "observation window in days")
		seed    = flag.Uint64("seed", 1, "generator seed")
		nbiot   = flag.Float64("nbiot", 0, "fraction of roaming meters migrated to NB-IoT")
		raw     = flag.Bool("raw", false, "generate via the per-event probe+builder pipeline (materialized capture)")
		stream  = flag.Bool("stream", false, "generate via the bounded-memory streaming ingest path (implies the per-event pipeline)")
		archive = flag.String("archive", "", "persist the CDR/xDR feed to a segmented store at this directory (implies -stream)")
		replay  = flag.String("replay", "", "rebuild the catalog from a segmented store instead of generating")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "raw-capture worker pool size (output is identical for any value)")
		out     = flag.String("out", "smip.csv", "devices-catalog output path")
	)
	flag.Parse()

	if *replay != "" {
		r, err := store.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		cat, stats, err := r.Replay(store.Query{}, *workers)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("replayed %d records (%d segments read, %d pruned, %d torn-skipped; %d body bytes)",
			stats.RecordsKept, stats.SegmentsRead, stats.SegmentsPruned, stats.SegmentsTorn, stats.BytesRead)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d records replayed from %s)\n", *out, len(cat.Records), *replay)
		return
	}

	cfg := dataset.DefaultSMIPConfig()
	cfg.NativeMeters = *native
	cfg.RoamingMeters = *roaming
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.NBIoTMigration = *nbiot
	cfg.Workers = *workers

	var arch *store.Writer
	if *archive != "" {
		*stream = true
		w, err := store.NewWriter(*archive, store.Meta{Host: cfg.Host, Start: cfg.Start, Days: cfg.Days}, 0)
		if err != nil {
			log.Fatal(err)
		}
		arch = w
		cfg.ArchiveCDRs = w.Sink()
	}

	start := time.Now()
	var ds *dataset.SMIPDataset
	switch {
	case *stream:
		ds = dataset.GenerateSMIPStreaming(cfg)
		log.Printf("streaming pipeline: catalog built with no materialized capture")
		if arch != nil {
			if err := arch.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("archived %d records into %d segments at %s", arch.Count(), arch.Segments(), *archive)
		}
	case *raw:
		var streams *dataset.RawStreams
		ds, streams = dataset.GenerateSMIPRaw(cfg)
		log.Printf("raw pipeline: %d radio events, %d CDRs/xDRs",
			len(streams.Radio), len(streams.Records))
	default:
		ds = dataset.GenerateSMIP(cfg)
	}
	log.Printf("generated %d catalog records for %d meters in %v",
		len(ds.Catalog.Records), len(ds.Devices), time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Catalog.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	nNB := len(ds.NBIoT)
	fmt.Printf("wrote %s (%d records; %d native, %d roaming, %d on NB-IoT)\n",
		*out, len(ds.Catalog.Records), *native, *roaming, nNB)
}
