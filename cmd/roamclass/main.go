// Command roamclass runs the paper's roaming labeler and M2M
// classifier over a devices-catalog CSV (as written by mnosim) and
// prints the population breakdowns of §4.2/§4.3.
//
// Usage:
//
//	roamclass -in catalog.csv
//	roamclass -in catalog.csv -gsma-seed 1 -apns
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"whereroam/internal/analysis"
	"whereroam/internal/catalog"
	"whereroam/internal/core"
	"whereroam/internal/dataset"
	"whereroam/internal/gsma"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roamclass: ")
	var (
		in       = flag.String("in", "catalog.csv", "devices-catalog CSV input")
		gsmaSeed = flag.Uint64("gsma-seed", 1, "seed of the synthetic GSMA catalog the dataset was generated with")
		showAPNs = flag.Bool("apns", false, "print the validated APN list (classification step 1)")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	cat, err := catalog.ReadCSV(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	db := gsma.Synthesize(*gsmaSeed)
	sums := cat.Summaries(db)
	labeler := core.NewLabeler(cat.Host, dataset.MVNO1, dataset.MVNO2)
	classifier := core.NewClassifier()
	results := classifier.Classify(sums)

	fmt.Printf("catalog: host %s, %d days, %d records, %d devices\n\n",
		cat.Host, cat.Days, len(cat.Records), len(sums))

	// Roaming labels.
	labels := map[core.Label]int{}
	for i := range sums {
		labels[labeler.LabelSummary(&sums[i])]++
	}
	lt := analysis.NewTable("label", "devices", "share")
	for _, l := range core.AllLabels {
		lt.AddRow(l.String(), labels[l], float64(labels[l])/float64(len(sums)))
	}
	fmt.Println(lt)

	// Classes.
	b := core.Breakdown(results)
	ct := analysis.NewTable("class", "devices", "share")
	for _, c := range []core.Class{core.ClassSmart, core.ClassFeat, core.ClassM2M, core.ClassM2MMaybe} {
		ct.AddRow(c.String(), b[c], float64(b[c])/float64(len(results)))
	}
	fmt.Println(ct)

	if *showAPNs {
		fmt.Println("validated M2M APNs:")
		for _, a := range classifier.ValidatedAPNs(sums) {
			fmt.Println("  " + a.String())
		}
	}
}
