// Command roamrepro regenerates the paper's tables and figures from
// the synthetic datasets and prints them in the harness's text form.
//
// Usage:
//
//	roamrepro                       # run every experiment
//	roamrepro -experiment fig11     # one experiment
//	roamrepro -scale 1.0 -seed 7    # bigger population, other seed
//	roamrepro -stream               # bounded-memory streaming dataset builds
//	roamrepro -sites 2              # federation size for the fed-* experiments
//	roamrepro -archive /data/feed   # persist the SMIP CDR feed while building
//	roamrepro -replay /data/feed    # verify + replay an archive, then exit
//	roamrepro -list                 # show experiment ids
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"whereroam/internal/dataset"
	"whereroam/internal/experiments"
	"whereroam/internal/mccmnc"
	"whereroam/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roamrepro: ")
	var (
		id      = flag.String("experiment", "all", "experiment id or 'all'")
		seed    = flag.Uint64("seed", 1, "generator seed")
		scale   = flag.Float64("scale", 0.5, "population scale factor (1.0 ≈ a tenth of paper scale)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline worker pool size (results are identical for any value)")
		stream  = flag.Bool("stream", false, "build datasets through the bounded-memory streaming ingestion paths")
		sites   = flag.Int("sites", 0, "federation sites for the fed-* experiments (0 = default footprint)")
		archive = flag.String("archive", "", "persist the session's SMIP CDR/xDR feed to a segmented store at this directory")
		replay  = flag.String("replay", "", "verify (strictly: torn/corrupt segments fail) and replay the segmented store at this directory, then exit; use roamstore for tolerant replay")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-15s %s\n", r.ID, r.Title)
		}
		return
	}

	if *replay != "" {
		r, err := store.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		if rep := r.Verify(); !rep.OK() {
			fmt.Print(rep)
			os.Exit(1)
		}
		cat, stats, err := r.Replay(store.Query{}, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replayed %s: %d records into %d catalog rows (%d segments read, %d pruned, %d torn-skipped; %d body bytes)\n",
			*replay, stats.RecordsKept, len(cat.Records),
			stats.SegmentsRead, stats.SegmentsPruned, stats.SegmentsTorn, stats.BytesRead)
		return
	}

	var hosts []mccmnc.PLMN
	if def := dataset.DefaultFederationHosts(); *sites > 0 && *sites < len(def) {
		hosts = def[:*sites]
	}
	sess := experiments.NewFederation(*seed, *scale, *workers, hosts...)
	sess.Streaming = *stream
	if *archive != "" {
		ds, err := sess.ArchiveTo(*archive)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("archived the SMIP CDR/xDR feed to %s (%d catalog records built live)",
			*archive, len(ds.Catalog.Records))
	}
	runners := experiments.All()
	if *id != "all" {
		r, ok := experiments.ByID(*id)
		if !ok {
			log.Printf("unknown experiment %q; available:", *id)
			for _, r := range runners {
				log.Printf("  %s", r.ID)
			}
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		start := time.Now()
		rep := r.Run(sess)
		fmt.Println(rep)
		fmt.Printf("(%s ran in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
