// Command roamvet statically enforces the repository's determinism
// and documentation contracts (see docs/ARCHITECTURE.md and the
// internal/lint package docs).
//
// It runs two ways:
//
//	roamvet [packages]             # standalone, e.g. roamvet ./...
//	go vet -vettool=$(pwd)/roamvet ./...
//
// Standalone mode loads packages via `go list -export` and analyzes
// every matched package of this module. As a vettool it speaks the go
// command's unit-checking protocol (-V=full / -flags handshakes plus
// one JSON config per package), so findings integrate with go vet's
// caching and output, and CI can make the suite a hard build gate.
// Either way the exit status is 0 when the tree is clean, 2 when any
// analyzer reports a finding, 1 on operational errors.
//
// Analyzers: maporder, rngpurity, stablesort, floatfold, godoclint.
// Safe sites are annotated in source with //roamvet:<analyzer>-ok
// <reason>; the reason is mandatory.
package main

import (
	"fmt"
	"os"
	"strings"

	"whereroam/internal/lint"
	"whereroam/internal/lint/driver"
)

// version is the fingerprint roamvet reports to the go command's
// -V=full handshake; it keys go vet's result cache, so bump it
// whenever analyzer behavior changes.
const version = "roamvet-1.0.0"

func main() {
	args := os.Args[1:]
	// The go command handshakes a vettool before use: -V=full asks
	// for a cache-keying version line, -flags for the supported
	// analyzer flags (roamvet has none).
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Printf("roamvet version %s\n", version)
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		n, err := driver.RunVetCfg(args[0], os.Stderr)
		exit(n, err)
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := driver.Load(".", patterns...)
	if err != nil {
		exit(0, err)
	}
	n := 0
	for _, u := range units {
		for _, d := range lint.Run(u, lint.AnalyzersFor(u.Path)) {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
			n++
		}
	}
	exit(n, nil)
}

// exit maps (findings, error) onto the vettool exit protocol: 1 for
// operational errors, 2 for findings, 0 for a clean tree.
func exit(findings int, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "roamvet: %v\n", err)
		os.Exit(1)
	}
	if findings > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}
