// Command fedsim drives a multi-operator federation: one shared GSMA
// catalog, operator world, global roamer fleet and per-day presence
// schedule, observed independently by N visited MNOs, with cross-site
// label and classifier validation — the paper's Table 1/§5
// observation that many visited operators see the same global IoT
// fleets — plus the federated SMIP (§4.4/§7) and M2M (§3/§6) planes
// derived from the same fleet and schedule.
//
// Usage:
//
//	fedsim                          # default 3-site federation, all fed-* experiments
//	fedsim -sites 2                 # first N default hosts
//	fedsim -hosts 23410,26202      # explicit visited MNOs
//	fedsim -stream                  # per-site catalogs via the streaming ingest router
//	fedsim -experiment fed-smip     # one experiment (fed-sites, fed-agreement,
//	                                # fed-validation, fed-smip, fed-m2m)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"whereroam/internal/dataset"
	"whereroam/internal/experiments"
	"whereroam/internal/mccmnc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fedsim: ")
	var (
		id      = flag.String("experiment", "all", `fed-* experiment id or "all"`)
		seed    = flag.Uint64("seed", 1, "generator seed")
		scale   = flag.Float64("scale", 0.5, "population scale factor")
		sites   = flag.Int("sites", 0, "use the first N default federation hosts (0 = all)")
		hosts   = flag.String("hosts", "", "comma-separated visited-MNO PLMNs (overrides -sites)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline worker pool size (results are identical for any value)")
		stream  = flag.Bool("stream", false, "build site catalogs through the bounded-memory streaming ingest router")
	)
	flag.Parse()

	plmns, err := resolveHosts(*hosts, *sites)
	if err != nil {
		log.Fatal(err)
	}

	sess := experiments.NewFederation(*seed, *scale, *workers, plmns...)
	sess.Streaming = *stream

	var runners []experiments.Runner
	for _, r := range experiments.All() {
		if !strings.HasPrefix(r.ID, "fed-") {
			continue
		}
		if *id == "all" || *id == r.ID {
			runners = append(runners, r)
		}
	}
	if len(runners) == 0 {
		log.Printf("unknown federation experiment %q; available:", *id)
		for _, r := range experiments.All() {
			if strings.HasPrefix(r.ID, "fed-") {
				log.Printf("  %s", r.ID)
			}
		}
		os.Exit(2)
	}
	for _, r := range runners {
		start := time.Now()
		rep := r.Run(sess)
		fmt.Println(rep)
		fmt.Printf("(%s ran in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}

// resolveHosts turns the -hosts / -sites flags into the federation's
// visited-MNO list (nil = the default footprint).
func resolveHosts(hosts string, sites int) ([]mccmnc.PLMN, error) {
	if hosts != "" {
		var out []mccmnc.PLMN
		for _, s := range strings.Split(hosts, ",") {
			p, err := mccmnc.Parse(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad -hosts entry %q: %v", s, err)
			}
			for _, prev := range out {
				if prev == p {
					return nil, fmt.Errorf("-hosts lists %v twice", p)
				}
			}
			out = append(out, p)
		}
		return out, nil
	}
	def := dataset.DefaultFederationHosts()
	if sites <= 0 || sites >= len(def) {
		return nil, nil
	}
	return def[:sites], nil
}
