// Command fedsim drives a multi-operator federation: one shared GSMA
// catalog, operator world, global roamer fleet and per-day presence
// schedule, observed independently by N visited MNOs, with cross-site
// label and classifier validation — the paper's Table 1/§5
// observation that many visited operators see the same global IoT
// fleets — plus the federated SMIP (§4.4/§7) and M2M (§3/§6) planes
// derived from the same fleet and schedule.
//
// Usage:
//
//	fedsim                          # default 3-site federation, all fed-* experiments
//	fedsim -sites 2                 # first N default hosts
//	fedsim -hosts 23410,26202      # explicit visited MNOs
//	fedsim -stream                  # per-site catalogs via the streaming ingest router
//	fedsim -outofcore               # bounded-memory build: counting pre-pass, sites one
//	                                # at a time, fleet plane materialized only on demand
//	fedsim -gen -outofcore -max-heap-mib 512  # generation only, self-asserting the heap peak
//	fedsim -archive /data/fed       # persist each site's CDR feed to /data/fed/site-<plmn>
//	fedsim -replay /data/fed        # replay every per-site store, then exit
//	fedsim -experiment fed-smip     # one experiment (fed-sites, fed-agreement,
//	                                # fed-validation, fed-smip, fed-m2m)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"whereroam/internal/benchfmt"
	"whereroam/internal/dataset"
	"whereroam/internal/experiments"
	"whereroam/internal/mccmnc"
	"whereroam/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fedsim: ")
	var (
		id      = flag.String("experiment", "all", `fed-* experiment id or "all"`)
		seed    = flag.Uint64("seed", 1, "generator seed")
		scale   = flag.Float64("scale", 0.5, "population scale factor")
		sites   = flag.Int("sites", 0, "use the first N default federation hosts (0 = all)")
		hosts   = flag.String("hosts", "", "comma-separated visited-MNO PLMNs (overrides -sites)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline worker pool size (results are identical for any value)")
		stream  = flag.Bool("stream", false, "build site catalogs through the bounded-memory streaming ingest router")
		ooc     = flag.Bool("outofcore", false, "build the federation out of core: sites one at a time, fleet plane lazy")
		genOnly = flag.Bool("gen", false, "generate the federation dataset and print its shape without running experiments")
		heapMiB = flag.Int64("max-heap-mib", 0, "fail if the process heap peak exceeds this many MiB (0 = no assertion)")
		archive = flag.String("archive", "", "persist each site's CDR/xDR feed to a per-site store under this directory")
		archSeg = flag.Int("archive-segment", 0, "records per archive segment (0 = store default); small values give tiny archives many prunable segments")
		replay  = flag.String("replay", "", "verify (strictly: torn/corrupt segments fail) and replay every per-site store under this directory, then exit; use roamstore for tolerant replay")
	)
	flag.Parse()

	if *replay != "" {
		replaySites(*replay, *workers)
		return
	}

	plmns, err := resolveHosts(*hosts, *sites)
	if err != nil {
		log.Fatal(err)
	}

	var stopWatch func() int64
	if *heapMiB > 0 {
		stopWatch = benchfmt.StartHeapWatch()
	}
	assertHeap := func() {
		if stopWatch == nil {
			return
		}
		peak := stopWatch() >> 20
		if peak > *heapMiB {
			log.Fatalf("heap peak %d MiB exceeds budget %d MiB", peak, *heapMiB)
		}
		log.Printf("heap peak %d MiB within budget %d MiB", peak, *heapMiB)
	}

	sess := experiments.NewFederation(*seed, *scale, *workers, plmns...)
	sess.Streaming = *stream
	sess.BoundedMemory = *ooc
	sess.ArchiveDir = *archive
	sess.ArchiveSegmentRecords = *archSeg

	if *genOnly {
		start := time.Now()
		fed := sess.FederationData()
		records := 0
		for _, site := range fed.Sites {
			records += len(site.Catalog.Records)
		}
		mode := "materialized"
		if *ooc {
			mode = "out-of-core"
		}
		fmt.Printf("generated %d sites, %d catalog records (%s) in %v\n",
			len(fed.Sites), records, mode, time.Since(start).Round(time.Millisecond))
		assertHeap()
		return
	}

	var runners []experiments.Runner
	for _, r := range experiments.All() {
		if !strings.HasPrefix(r.ID, "fed-") {
			continue
		}
		if *id == "all" || *id == r.ID {
			runners = append(runners, r)
		}
	}
	if len(runners) == 0 {
		log.Printf("unknown federation experiment %q; available:", *id)
		for _, r := range experiments.All() {
			if strings.HasPrefix(r.ID, "fed-") {
				log.Printf("  %s", r.ID)
			}
		}
		os.Exit(2)
	}
	for _, r := range runners {
		start := time.Now()
		rep := r.Run(sess)
		fmt.Println(rep)
		fmt.Printf("(%s ran in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	assertHeap()
}

// replaySites verifies and replays every per-site store under dir
// (the layout fedsim -archive writes: one site-<plmn> store per
// visited operator).
func replaySites(dir string, workers int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	var siteDirs []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "site-") {
			siteDirs = append(siteDirs, e.Name())
		}
	}
	sort.Strings(siteDirs)
	if len(siteDirs) == 0 {
		log.Fatalf("no site-<plmn> stores under %s", dir)
	}
	for _, name := range siteDirs {
		r, err := store.Open(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		if rep := r.Verify(); !rep.OK() {
			fmt.Print(rep)
			os.Exit(1)
		}
		cat, stats, err := r.Replay(store.Query{}, workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: replayed %d records into %d catalog rows (%d segments read, %d pruned, %d torn-skipped)\n",
			name, stats.RecordsKept, len(cat.Records),
			stats.SegmentsRead, stats.SegmentsPruned, stats.SegmentsTorn)
	}
}

// resolveHosts turns the -hosts / -sites flags into the federation's
// visited-MNO list (nil = the default footprint).
func resolveHosts(hosts string, sites int) ([]mccmnc.PLMN, error) {
	if hosts != "" {
		var out []mccmnc.PLMN
		for _, s := range strings.Split(hosts, ",") {
			p, err := mccmnc.Parse(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad -hosts entry %q: %v", s, err)
			}
			for _, prev := range out {
				if prev == p {
					return nil, fmt.Errorf("-hosts lists %v twice", p)
				}
			}
			out = append(out, p)
		}
		return out, nil
	}
	def := dataset.DefaultFederationHosts()
	if sites <= 0 || sites >= len(def) {
		return nil, nil
	}
	return def[:sites], nil
}
