// Command roamstore is the operator tool for segmented CDR/xDR
// archives (internal/store): it archives a live synthetic feed while
// the catalog builds (write), lists a store's segment index (ls),
// verifies footers, body CRCs and bloom frames end to end — reporting
// torn and corrupt segments (verify) — rebuilds the devices-catalog
// from a store with index-driven pruning (replay), and merges N
// tap-order archives into one time-ordered mediation-shape store
// (compact).
//
// Usage:
//
//	roamstore write   -dir /data/feed -native 2000 -roaming 1500 -days 10
//	roamstore ls      -dir /data/feed
//	roamstore verify  -dir /data/feed
//	roamstore replay  -dir /data/feed -min-day 3 -max-day 5 -out sliced.csv
//	roamstore replay  -dir /data/feed -visited 23410 -workers 8
//	roamstore compact -out /data/merged /data/site-a /data/site-b
//	roamstore compact -out /data/q4 -min-day 60 -max-day 90 -plan /data/feed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"whereroam/internal/dataset"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roamstore: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "write":
		cmdWrite(os.Args[2:])
	case "ls":
		cmdLs(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "compact":
		cmdCompact(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: roamstore <write|ls|verify|replay|compact> [flags]
  write   archive a synthetic SMIP CDR/xDR feed while its catalog builds
  ls      list the store manifest: segments, index ranges, torn files
  verify  re-read every sealed segment; report torn and corrupt segments
  replay  rebuild the devices-catalog from the store, with pruning flags
  compact merge N input stores into one time-ordered store (-plan = dry run)`)
	os.Exit(2)
}

// cmdWrite runs the persist-and-ingest path: the §7 streaming
// generator builds its catalog live while every CDR/xDR fans out to
// the archive.
func cmdWrite(args []string) {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "store directory to create (required)")
		native  = fs.Int("native", 2000, "SMIP-native meters")
		roaming = fs.Int("roaming", 1500, "roaming meters on global IoT SIMs")
		days    = fs.Int("days", 10, "observation window in days")
		seed    = fs.Uint64("seed", 1, "generator seed")
		segRecs = fs.Int("segment", 0, "records per segment (0 = store default)")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "emission worker pool size")
	)
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("write: -dir is required")
	}

	cfg := dataset.DefaultSMIPConfig()
	cfg.NativeMeters, cfg.RoamingMeters = *native, *roaming
	cfg.Days, cfg.Seed, cfg.Workers = *days, *seed, *workers

	w, err := store.NewWriter(*dir, store.Meta{Host: cfg.Host, Start: cfg.Start, Days: cfg.Days}, *segRecs)
	if err != nil {
		log.Fatal(err)
	}
	cfg.ArchiveCDRs = w.Sink()
	start := time.Now()
	ds := dataset.GenerateSMIPStreaming(cfg)
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d records into %d segments at %s (catalog built live: %d records) in %v\n",
		w.Count(), w.Segments(), *dir, len(ds.Catalog.Records), time.Since(start).Round(time.Millisecond))
}

func openStore(fs *flag.FlagSet, args []string, dir *string) *store.Reader {
	fs.Parse(args)
	if *dir == "" {
		log.Fatalf("%s: -dir is required", fs.Name())
	}
	r, err := store.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	r := openStore(fs, args, dir)
	man := r.Manifest()
	fmt.Printf("store %s: kind=%s host=%s start=%s days=%d segments=%d records=%d\n",
		*dir, man.Kind, man.Host, man.Start.Format(time.RFC3339), man.Days,
		len(man.Segments), man.TotalRecords)
	mi := r.ManifestInfo()
	switch mi.Version {
	case 1:
		fmt.Printf("manifest v1 (MANIFEST.json, full rewrite per seal)\n")
	default:
		line := fmt.Sprintf("manifest v%d: checkpoint=%d segments, log tail=%d entries",
			mi.Version, mi.CheckpointSegments, mi.TailSegments)
		if mi.TornLogTail {
			line += " (torn log tail discarded)"
		}
		fmt.Println(line)
	}
	fmt.Printf("%-18s %8s %10s %11s %35s %6s %s\n", "segment", "records", "bytes", "days", "devices", "bloom", "visited")
	for i := range man.Segments {
		si := &man.Segments[i]
		visited := fmt.Sprint(si.Visited)
		if si.VisitedOverflow {
			visited += "+"
		}
		bloom := "-"
		if len(si.Bloom) > 0 {
			bloom = fmt.Sprintf("%dB", len(si.Bloom))
		}
		// Full 64-bit hashes: replay -device matches against these, so
		// the listing must print values it can actually be fed.
		fmt.Printf("%-18s %8d %10d [%4d,%4d] [%016x,%016x] %6s %s\n",
			si.Name, si.Records, si.Bytes, si.MinDay, si.MaxDay,
			si.MinDevice, si.MaxDevice, bloom, visited)
	}
	for _, tname := range r.Torn() {
		fmt.Printf("%-18s TORN (not sealed by the manifest)\n", tname)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	r := openStore(fs, args, dir)
	rep := r.Verify()
	fmt.Print(rep)
	if !rep.OK() {
		os.Exit(1)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "store directory (required)")
		minDay  = fs.Int("min-day", -1, "keep only records from this window day on")
		maxDay  = fs.Int("max-day", -1, "keep only records up to this window day")
		device  = fs.String("device", "", "keep only this device-ID hash (hex)")
		visited = fs.String("visited", "", "keep only records on this visited PLMN")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "replay worker pool size (catalog is identical for any value)")
		out     = fs.String("out", "", "write the replayed devices-catalog as CSV")
		noBloom = fs.Bool("no-bloom", false, "disable bloom-filter segment pruning")
	)
	r := openStore(fs, args, dir)

	f := store.Query{}
	if *minDay >= 0 || *maxDay >= 0 {
		lo, hi := *minDay, *maxDay
		if lo < 0 {
			lo = 0
		}
		if hi < 0 {
			hi = r.Manifest().Days - 1
		}
		f = f.Days(lo, hi)
	}
	if *device != "" {
		// strconv rejects trailing garbage, unlike Sscanf %x — a typo
		// must error out, not silently filter on the wrong device.
		dev, err := strconv.ParseUint(strings.TrimPrefix(*device, "0x"), 16, 64)
		if err != nil {
			log.Fatalf("replay: bad -device %q: %v", *device, err)
		}
		f = f.Device(identity.DeviceID(dev))
	}
	if *visited != "" {
		p, err := mccmnc.Parse(*visited)
		if err != nil {
			log.Fatalf("replay: bad -visited %q: %v", *visited, err)
		}
		f = f.VisitedHost(p)
	}
	if *noBloom {
		f = f.WithoutBloom()
	}

	start := time.Now()
	cat, stats, err := r.Replay(f, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d/%d records into %d catalog rows in %v\n",
		stats.RecordsKept, stats.RecordsRead, len(cat.Records), time.Since(start).Round(time.Millisecond))
	fmt.Printf("segments: %d read, %d pruned (%d by bloom), %d torn-skipped of %d; %d body bytes read\n",
		stats.SegmentsRead, stats.SegmentsPruned, stats.SegmentsPrunedBloom,
		stats.SegmentsTorn, stats.SegmentsTotal, stats.BytesRead)
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.WriteCSV(fh); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// cmdCompact merges N input stores into one time-ordered store, or
// with -plan prints the merge plan without reading a segment body.
func cmdCompact(args []string) {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	var (
		out     = fs.String("out", "", "output store directory to create (required)")
		minDay  = fs.Int("min-day", -1, "compact only records from this window day on")
		maxDay  = fs.Int("max-day", -1, "compact only records up to this window day")
		segRecs = fs.Int("segment", 0, "output records per segment (0 = store default)")
		fanIn   = fs.Int("fanin", 0, "merge fan-in (0 = default; output is identical at any value)")
		plan    = fs.Bool("plan", false, "print the merge plan and exit without compacting")
	)
	fs.Parse(args)
	inputs := fs.Args()
	if len(inputs) == 0 {
		log.Fatal("compact: need at least one input store directory")
	}
	if *out == "" && !*plan {
		log.Fatal("compact: -out is required (or use -plan for a dry run)")
	}

	opts := store.CompactOptions{SegmentRecords: *segRecs, MaxFanIn: *fanIn}
	if *minDay >= 0 || *maxDay >= 0 {
		lo, hi := *minDay, *maxDay
		if lo < 0 {
			lo = 0
		}
		if hi < 0 {
			hi = 1<<31 - 1
		}
		opts.Query = opts.Query.Days(lo, hi)
	}

	if *plan {
		p, err := store.PlanCompact(inputs, opts)
		if err != nil {
			log.Fatal(err)
		}
		host := p.Meta.Host.Concat()
		if p.Meta.Host.IsZero() {
			host = "(mixed)"
		}
		fmt.Printf("plan: kind=%s host=%s days=%d segment=%d fanin=%d\n",
			p.Kind, host, p.Meta.Days, p.SegmentRecords, p.MaxFanIn)
		for _, in := range p.Inputs {
			fmt.Printf("  %-40s %4d/%-4d segments selected  %9d records\n",
				in.Dir, in.Selected, in.Segments, in.Records)
		}
		fmt.Printf("merge: %d runs in %d pass(es), %d records\n", p.Runs, p.Passes, p.Records)
		return
	}

	start := time.Now()
	stats, err := store.Compact(*out, inputs, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted %d records from %d segments (%d pruned) across %d stores\n",
		stats.RecordsOut, stats.SegmentsIn, stats.SegmentsPruned, len(inputs))
	fmt.Printf("wrote %d time-ordered segments to %s in %d pass(es), %v\n",
		stats.SegmentsOut, *out, stats.Passes, time.Since(start).Round(time.Millisecond))
}
