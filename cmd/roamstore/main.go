// Command roamstore is the operator tool for segmented CDR/xDR
// archives (internal/store): it archives a live synthetic feed while
// the catalog builds (write), lists a store's segment index (ls),
// verifies footers and body CRCs end to end — reporting torn and
// corrupt segments (verify) — and rebuilds the devices-catalog from a
// store with index-driven pruning (replay).
//
// Usage:
//
//	roamstore write  -dir /data/feed -native 2000 -roaming 1500 -days 10
//	roamstore ls     -dir /data/feed
//	roamstore verify -dir /data/feed
//	roamstore replay -dir /data/feed -min-day 3 -max-day 5 -out sliced.csv
//	roamstore replay -dir /data/feed -visited 23410 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"whereroam/internal/dataset"
	"whereroam/internal/identity"
	"whereroam/internal/mccmnc"
	"whereroam/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roamstore: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "write":
		cmdWrite(os.Args[2:])
	case "ls":
		cmdLs(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: roamstore <write|ls|verify|replay> [flags]
  write   archive a synthetic SMIP CDR/xDR feed while its catalog builds
  ls      list the store manifest: segments, index ranges, torn files
  verify  re-read every sealed segment; report torn and corrupt segments
  replay  rebuild the devices-catalog from the store, with pruning flags`)
	os.Exit(2)
}

// cmdWrite runs the persist-and-ingest path: the §7 streaming
// generator builds its catalog live while every CDR/xDR fans out to
// the archive.
func cmdWrite(args []string) {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "store directory to create (required)")
		native  = fs.Int("native", 2000, "SMIP-native meters")
		roaming = fs.Int("roaming", 1500, "roaming meters on global IoT SIMs")
		days    = fs.Int("days", 10, "observation window in days")
		seed    = fs.Uint64("seed", 1, "generator seed")
		segRecs = fs.Int("segment", 0, "records per segment (0 = store default)")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "emission worker pool size")
	)
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("write: -dir is required")
	}

	cfg := dataset.DefaultSMIPConfig()
	cfg.NativeMeters, cfg.RoamingMeters = *native, *roaming
	cfg.Days, cfg.Seed, cfg.Workers = *days, *seed, *workers

	w, err := store.NewWriter(*dir, store.Meta{Host: cfg.Host, Start: cfg.Start, Days: cfg.Days}, *segRecs)
	if err != nil {
		log.Fatal(err)
	}
	cfg.ArchiveCDRs = w.Sink()
	start := time.Now()
	ds := dataset.GenerateSMIPStreaming(cfg)
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d records into %d segments at %s (catalog built live: %d records) in %v\n",
		w.Count(), w.Segments(), *dir, len(ds.Catalog.Records), time.Since(start).Round(time.Millisecond))
}

func openStore(fs *flag.FlagSet, args []string, dir *string) *store.Replayer {
	fs.Parse(args)
	if *dir == "" {
		log.Fatalf("%s: -dir is required", fs.Name())
	}
	r, err := store.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	r := openStore(fs, args, dir)
	man := r.Manifest()
	fmt.Printf("store %s: kind=%s host=%s start=%s days=%d segments=%d records=%d\n",
		*dir, man.Kind, man.Host, man.Start.Format(time.RFC3339), man.Days,
		len(man.Segments), man.TotalRecords)
	fmt.Printf("%-18s %8s %10s %11s %35s %s\n", "segment", "records", "bytes", "days", "devices", "visited")
	for i := range man.Segments {
		si := &man.Segments[i]
		visited := fmt.Sprint(si.Visited)
		if si.VisitedOverflow {
			visited += "+"
		}
		// Full 64-bit hashes: replay -device matches against these, so
		// the listing must print values it can actually be fed.
		fmt.Printf("%-18s %8d %10d [%4d,%4d] [%016x,%016x] %s\n",
			si.Name, si.Records, si.Bytes, si.MinDay, si.MaxDay,
			si.MinDevice, si.MaxDevice, visited)
	}
	for _, tname := range r.Torn() {
		fmt.Printf("%-18s TORN (not sealed by the manifest)\n", tname)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	r := openStore(fs, args, dir)
	rep := r.Verify()
	fmt.Print(rep)
	if !rep.OK() {
		os.Exit(1)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "store directory (required)")
		minDay  = fs.Int("min-day", -1, "keep only records from this window day on")
		maxDay  = fs.Int("max-day", -1, "keep only records up to this window day")
		device  = fs.String("device", "", "keep only this device-ID hash (hex)")
		visited = fs.String("visited", "", "keep only records on this visited PLMN")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "replay worker pool size (catalog is identical for any value)")
		out     = fs.String("out", "", "write the replayed devices-catalog as CSV")
	)
	r := openStore(fs, args, dir)

	f := store.Filter{}
	if *minDay >= 0 || *maxDay >= 0 {
		lo, hi := *minDay, *maxDay
		if lo < 0 {
			lo = 0
		}
		if hi < 0 {
			hi = r.Manifest().Days - 1
		}
		f = f.Days(lo, hi)
	}
	if *device != "" {
		// strconv rejects trailing garbage, unlike Sscanf %x — a typo
		// must error out, not silently filter on the wrong device.
		dev, err := strconv.ParseUint(strings.TrimPrefix(*device, "0x"), 16, 64)
		if err != nil {
			log.Fatalf("replay: bad -device %q: %v", *device, err)
		}
		f = f.Devices(identity.DeviceID(dev), identity.DeviceID(dev))
	}
	if *visited != "" {
		p, err := mccmnc.Parse(*visited)
		if err != nil {
			log.Fatalf("replay: bad -visited %q: %v", *visited, err)
		}
		f = f.VisitedHost(p)
	}

	start := time.Now()
	cat, stats, err := r.Replay(f, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d/%d records into %d catalog rows in %v\n",
		stats.RecordsKept, stats.RecordsRead, len(cat.Records), time.Since(start).Round(time.Millisecond))
	fmt.Printf("segments: %d read, %d pruned, %d torn-skipped of %d; %d body bytes read\n",
		stats.SegmentsRead, stats.SegmentsPruned, stats.SegmentsTorn, stats.SegmentsTotal, stats.BytesRead)
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.WriteCSV(fh); err != nil {
			log.Fatal(err)
		}
		if err := fh.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
