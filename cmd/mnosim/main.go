// Command mnosim synthesizes the §4 visited-MNO dataset and writes
// the daily devices-catalog as CSV, plus an optional ground-truth
// class file for validation.
//
// With -outofcore the dataset never materializes: the out-of-core
// generator streams devices and records straight into the CSV
// writers under a bounded device residency, so the process peak stays
// near the counting pre-pass regardless of -devices. -max-heap-mib
// turns the run into a self-asserting memory experiment: the process
// samples its own heap and exits non-zero if the peak exceeded the
// budget — the hook CI's scale-smoke job uses to prove the
// out-of-core path fits where the materialized one does not.
//
// Usage:
//
//	mnosim -devices 30000 -days 22 -seed 1 -out catalog.csv -truth truth.csv
//	mnosim -devices 300000 -outofcore -max-heap-mib 512 -out catalog.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"whereroam/internal/benchfmt"
	"whereroam/internal/catalog"
	"whereroam/internal/dataset"
	"whereroam/internal/devices"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mnosim: ")
	var (
		devN        = flag.Int("devices", 30000, "distinct devices across the window")
		days        = flag.Int("days", 22, "observation window in days")
		seed        = flag.Uint64("seed", 1, "generator seed")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker pool size (output is identical for any value)")
		out         = flag.String("out", "catalog.csv", "devices-catalog output path")
		truth       = flag.String("truth", "", "optional ground-truth class CSV output path")
		outOfCore   = flag.Bool("outofcore", false, "stream the generation into the CSV writers without materializing the dataset")
		maxResident = flag.Int("max-resident", 0, "out-of-core device residency budget (0 = one per worker)")
		maxHeapMiB  = flag.Int64("max-heap-mib", 0, "fail if the process heap peak exceeds this many MiB (0 = no assertion)")
	)
	flag.Parse()

	cfg := dataset.DefaultMNOConfig()
	cfg.Devices = *devN
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.MaxResidentDevices = *maxResident

	var stopWatch func() int64
	if *maxHeapMiB > 0 {
		stopWatch = benchfmt.StartHeapWatch()
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	var tw *csv.Writer
	var tf *os.File
	if *truth != "" {
		if tf, err = os.Create(*truth); err != nil {
			log.Fatal(err)
		}
		tw = csv.NewWriter(tf)
		if err := tw.Write([]string{"device", "class"}); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	var records int64
	var devCount int
	if *outOfCore {
		cw, err := catalog.NewCSVWriter(f, cfg.Host, cfg.Days)
		if err != nil {
			log.Fatal(err)
		}
		stream := dataset.StreamMNO(cfg, dataset.MNOSink{
			Device: func(d devices.Device, _ bool) {
				if tw != nil {
					if err := tw.Write([]string{d.ID.String(), d.Class.String()}); err != nil {
						log.Fatal(err)
					}
				}
			},
			Record: func(rec catalog.DailyRecord) {
				if err := cw.Write(&rec); err != nil {
					log.Fatal(err)
				}
			},
		})
		if err := cw.Flush(); err != nil {
			log.Fatal(err)
		}
		records, devCount = stream.Records, stream.Devices
		log.Printf("streamed %d catalog records for %d devices in %v (peak residency %d)",
			records, devCount, time.Since(start).Round(time.Millisecond), stream.ResidentPeak)
	} else {
		ds := dataset.GenerateMNO(cfg)
		log.Printf("generated %d catalog records for %d devices in %v",
			len(ds.Catalog.Records), len(ds.Devices), time.Since(start).Round(time.Millisecond))
		if err := ds.Catalog.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if tw != nil {
			for _, d := range ds.Devices {
				if err := tw.Write([]string{d.ID.String(), d.Class.String()}); err != nil {
					log.Fatal(err)
				}
			}
		}
		records, devCount = int64(len(ds.Catalog.Records)), len(ds.Devices)
	}

	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d records)\n", *out, records)
	if tw != nil {
		tw.Flush()
		if err := tw.Error(); err != nil {
			log.Fatal(err)
		}
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d devices)\n", *truth, devCount)
	}

	if stopWatch != nil {
		peak := stopWatch() >> 20
		if peak > *maxHeapMiB {
			log.Fatalf("heap peak %d MiB exceeds budget %d MiB", peak, *maxHeapMiB)
		}
		log.Printf("heap peak %d MiB within budget %d MiB", peak, *maxHeapMiB)
	}
}
