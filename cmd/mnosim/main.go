// Command mnosim synthesizes the §4 visited-MNO dataset and writes
// the daily devices-catalog as CSV, plus an optional ground-truth
// class file for validation.
//
// Usage:
//
//	mnosim -devices 30000 -days 22 -seed 1 -out catalog.csv -truth truth.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"whereroam/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mnosim: ")
	var (
		devices = flag.Int("devices", 30000, "distinct devices across the window")
		days    = flag.Int("days", 22, "observation window in days")
		seed    = flag.Uint64("seed", 1, "generator seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker pool size (output is identical for any value)")
		out     = flag.String("out", "catalog.csv", "devices-catalog output path")
		truth   = flag.String("truth", "", "optional ground-truth class CSV output path")
	)
	flag.Parse()

	cfg := dataset.DefaultMNOConfig()
	cfg.Devices = *devices
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Workers = *workers

	start := time.Now()
	ds := dataset.GenerateMNO(cfg)
	log.Printf("generated %d catalog records for %d devices in %v",
		len(ds.Catalog.Records), len(ds.Devices), time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Catalog.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d records)\n", *out, len(ds.Catalog.Records))

	if *truth != "" {
		tf, err := os.Create(*truth)
		if err != nil {
			log.Fatal(err)
		}
		w := csv.NewWriter(tf)
		if err := w.Write([]string{"device", "class"}); err != nil {
			log.Fatal(err)
		}
		for _, d := range ds.Devices {
			if err := w.Write([]string{d.ID.String(), d.Class.String()}); err != nil {
				log.Fatal(err)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			log.Fatal(err)
		}
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d devices)\n", *truth, len(ds.Devices))
	}
}
