// Command m2msim synthesizes the §3 M2M-platform signaling dataset
// and writes it to disk in the binary wire format or as CSV.
//
// Usage:
//
//	m2msim -devices 12000 -days 11 -seed 1 -out m2m.bin
//	m2msim -devices 1000 -csv -out m2m.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"whereroam/internal/dataset"
	"whereroam/internal/netsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("m2msim: ")
	var (
		devices = flag.Int("devices", 12000, "IoT SIM population size")
		days    = flag.Int("days", 11, "observation window in days")
		seed    = flag.Uint64("seed", 1, "generator seed")
		sample  = flag.Float64("sample", 1, "probe sampling rate (0,1]")
		policy  = flag.String("policy", "sticky", "VMNO selection policy: sticky|strongest|rotate")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "synthesis worker pool size (output is identical for any value)")
		out     = flag.String("out", "m2m.bin", "output path")
		asCSV   = flag.Bool("csv", false, "write CSV instead of the binary wire format")
	)
	flag.Parse()

	cfg := dataset.DefaultM2MConfig()
	cfg.Devices = *devices
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.SampleRate = *sample
	cfg.Workers = *workers
	switch *policy {
	case "sticky":
		cfg.Policy = netsim.PolicySticky
	case "strongest":
		cfg.Policy = netsim.PolicyStrongest
	case "rotate":
		cfg.Policy = netsim.PolicyRotate
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	start := time.Now()
	ds := dataset.GenerateM2M(cfg)
	log.Printf("generated %d transactions from %d devices in %v",
		len(ds.Transactions), len(ds.Truth), time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	if *asCSV {
		err = ds.SaveTransactionsCSV(f)
	} else {
		err = ds.SaveTransactions(f)
	}
	if err != nil {
		log.Fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("wrote %s (%d bytes, %d transactions, %d devices, %d days)\n",
		*out, info.Size(), len(ds.Transactions), len(ds.Truth), ds.Days)
}
