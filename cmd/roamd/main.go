// Command roamd serves catalog, classification and analysis queries
// over archived CDR stores. It mounts every site-<plmn> store under
// an archive root (the layout fedsim -archive writes), builds hot
// catalog slices on demand via pruned replay, and keeps them in a
// size-bounded LRU behind an HTTP/JSON API.
//
// Usage:
//
//	roamd -archive DIR [-addr :8080] [-cache-mb -1] [-workers N]
//	      [-metrics] [-pprof] [-slow-ms 250]
//
// Endpoints (all GET):
//
//	/v1/healthz                          liveness
//	/v1/statsz                           cache counters + mounts (deprecated: use /metrics)
//	/v1/sites                            mounted sites
//	/v1/sites/{site}/stats               whole-window operator stats
//	/v1/sites/{site}/days?lo=&hi=        day-range summary
//	/v1/sites/{site}/devices[?limit=]    device hashes
//	/v1/sites/{site}/devices/{device}    single-device lookup
//	/v1/sites/{site}/analysis/{series}   analysis series
//	/v1/compare                          cross-site comparison
//	/metrics                             Prometheus text exposition (-metrics)
//	/debug/spans                         recent traced operations (-metrics)
//	/debug/pprof/*                       runtime profiles (-pprof)
//
// -cache-mb defaults to -1: derive the slice-cache bound from the
// process's GOMEMLIMIT (a quarter of the limit, clamped), falling
// back to 256 MiB when no limit is set.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"whereroam/internal/obs"
	"whereroam/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roamd: ")
	var (
		archive = flag.String("archive", "", "archive root containing site-<plmn> store directories (required)")
		addr    = flag.String("addr", ":8080", "listen address")
		cacheMB = flag.Int("cache-mb", -1, "slice cache bound in MiB (0 = unbounded, -1 = auto from GOMEMLIMIT)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "replay parallelism per slice fill")
		metrics = flag.Bool("metrics", true, "expose /metrics and /debug/spans")
		pprofOn = flag.Bool("pprof", false, "expose /debug/pprof/* profiling endpoints")
		slowMS  = flag.Int("slow-ms", 250, "log traced operations slower than this many milliseconds")
	)
	flag.Parse()
	if *archive == "" {
		fmt.Fprintln(os.Stderr, "usage: roamd -archive DIR [-addr :8080] [-cache-mb -1] [-workers N] [-metrics] [-pprof] [-slow-ms 250]")
		os.Exit(2)
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB < 0 {
		cacheBytes = serve.AutoCacheBytes(debug.SetMemoryLimit(-1))
		log.Printf("cache bound auto-derived: %d MiB", cacheBytes>>20)
	}

	cfg := serve.Config{
		Workers:       *workers,
		MaxCacheBytes: cacheBytes,
	}
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(256, time.Duration(*slowMS)*time.Millisecond, log.Printf)
		cfg.Metrics = reg
		cfg.Tracer = tracer
	}

	srv := serve.New(cfg)
	names, err := srv.MountSites(*archive)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mounted %d sites from %s: %s", len(names), *archive, strings.Join(names, " "))
	for _, si := range srv.Sites() {
		log.Printf("  site %s: host=%s days=%d segments=%d records=%d",
			si.Site, si.Host, si.Days, si.Segments, si.Records)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", srv.Handler())
	if *metrics {
		mux.Handle("GET /metrics", reg.Handler())
		mux.Handle("GET /debug/spans", tracer.Handler())
		log.Print("metrics on /metrics, spans on /debug/spans")
	}
	if *pprofOn {
		obs.RegisterPprof(mux)
		log.Print("profiling on /debug/pprof/")
	}

	log.Printf("serving on %s", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
