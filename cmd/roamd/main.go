// Command roamd serves catalog, classification and analysis queries
// over archived CDR stores. It mounts every site-<plmn> store under
// an archive root (the layout fedsim -archive writes), builds hot
// catalog slices on demand via pruned replay, and keeps them in a
// size-bounded LRU behind an HTTP/JSON API.
//
// Usage:
//
//	roamd -archive DIR [-addr :8080] [-cache-mb 256] [-workers N]
//
// Endpoints (all GET):
//
//	/v1/healthz                          liveness
//	/v1/statsz                           cache counters + mounts
//	/v1/sites                            mounted sites
//	/v1/sites/{site}/stats               whole-window operator stats
//	/v1/sites/{site}/days?lo=&hi=        day-range summary
//	/v1/sites/{site}/devices[?limit=]    device hashes
//	/v1/sites/{site}/devices/{device}    single-device lookup
//	/v1/sites/{site}/analysis/{series}   analysis series
//	/v1/compare                          cross-site comparison
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strings"

	"whereroam/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roamd: ")
	var (
		archive = flag.String("archive", "", "archive root containing site-<plmn> store directories (required)")
		addr    = flag.String("addr", ":8080", "listen address")
		cacheMB = flag.Int("cache-mb", 256, "slice cache bound in MiB (0 = unbounded)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "replay parallelism per slice fill")
	)
	flag.Parse()
	if *archive == "" {
		fmt.Fprintln(os.Stderr, "usage: roamd -archive DIR [-addr :8080] [-cache-mb 256] [-workers N]")
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Workers:       *workers,
		MaxCacheBytes: int64(*cacheMB) << 20,
	})
	names, err := srv.MountSites(*archive)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mounted %d sites from %s: %s", len(names), *archive, strings.Join(names, " "))
	for _, si := range srv.Sites() {
		log.Printf("  site %s: host=%s days=%d segments=%d records=%d",
			si.Site, si.Host, si.Days, si.Segments, si.Records)
	}
	log.Printf("serving on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
