package whereroam

import (
	"testing"
)

// The facade tests exercise the public API end to end the way the
// README quickstart does.

func TestFacadeQuickstart(t *testing.T) {
	sess := NewSession(1, 0.05)
	mno := sess.MNO()
	sums := mno.Catalog.Summaries(mno.GSMA)
	if len(sums) == 0 {
		t.Fatal("no summaries")
	}
	results := NewClassifier().Classify(sums)
	if len(results) != len(sums) {
		t.Fatalf("results = %d, summaries = %d", len(results), len(sums))
	}
	b := Breakdown(results)
	if b[ClassSmart] == 0 || b[ClassM2M] == 0 {
		t.Errorf("breakdown missing classes: %v", b)
	}
	v, err := Validate(results, mno.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accuracy() < 0.9 {
		t.Errorf("accuracy = %.3f", v.Accuracy())
	}
}

func TestFacadeLabeler(t *testing.T) {
	host, err := ParsePLMN("23410")
	if err != nil {
		t.Fatal(err)
	}
	nl, _ := ParsePLMN("20404")
	lb := NewLabeler(host)
	if got := lb.Label(nl, host).String(); got != "I:H" {
		t.Errorf("label = %s", got)
	}
}

func TestFacadeAPN(t *testing.T) {
	a, err := ParseAPN("smhp.centricaplc.com.mnc004.mcc204.gprs")
	if err != nil {
		t.Fatal(err)
	}
	if a.NetworkID != "smhp.centricaplc.com" {
		t.Errorf("NetworkID = %q", a.NetworkID)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 15 {
		t.Fatalf("registered experiments = %d", len(Experiments()))
	}
	if _, ok := ExperimentByID("fig11"); !ok {
		t.Fatal("fig11 missing")
	}
}

func TestFacadeECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3})
	if e.Median() != 2 {
		t.Errorf("median = %f", e.Median())
	}
}

func TestFacadeGenerators(t *testing.T) {
	cfg := DefaultM2MConfig()
	cfg.Devices = 200
	ds := GenerateM2M(cfg)
	if len(ds.Transactions) == 0 {
		t.Fatal("no transactions")
	}
	scfg := DefaultSMIPConfig()
	scfg.NativeMeters, scfg.RoamingMeters = 100, 100
	smip := GenerateSMIP(scfg)
	if len(smip.Devices) != 200 {
		t.Fatalf("smip devices = %d", len(smip.Devices))
	}
}
