package whereroam

import (
	"testing"
)

// The facade tests exercise the public API end to end the way the
// README quickstart does.

func TestFacadeQuickstart(t *testing.T) {
	sess := NewSession(1, 0.05)
	mno := sess.MNO()
	sums := mno.Catalog.Summaries(mno.GSMA)
	if len(sums) == 0 {
		t.Fatal("no summaries")
	}
	results := NewClassifier().Classify(sums)
	if len(results) != len(sums) {
		t.Fatalf("results = %d, summaries = %d", len(results), len(sums))
	}
	b := Breakdown(results)
	if b[ClassSmart] == 0 || b[ClassM2M] == 0 {
		t.Errorf("breakdown missing classes: %v", b)
	}
	v, err := Validate(results, mno.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if v.Accuracy() < 0.9 {
		t.Errorf("accuracy = %.3f", v.Accuracy())
	}
}

func TestFacadeLabeler(t *testing.T) {
	host, err := ParsePLMN("23410")
	if err != nil {
		t.Fatal(err)
	}
	nl, _ := ParsePLMN("20404")
	lb := NewLabeler(host)
	if got := lb.Label(nl, host).String(); got != "I:H" {
		t.Errorf("label = %s", got)
	}
}

func TestFacadeAPN(t *testing.T) {
	a, err := ParseAPN("smhp.centricaplc.com.mnc004.mcc204.gprs")
	if err != nil {
		t.Fatal(err)
	}
	if a.NetworkID != "smhp.centricaplc.com" {
		t.Errorf("NetworkID = %q", a.NetworkID)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 15 {
		t.Fatalf("registered experiments = %d", len(Experiments()))
	}
	if _, ok := ExperimentByID("fig11"); !ok {
		t.Fatal("fig11 missing")
	}
}

func TestFacadeECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3})
	if e.Median() != 2 {
		t.Errorf("median = %f", e.Median())
	}
}

func TestFacadeGenerators(t *testing.T) {
	cfg := DefaultM2MConfig()
	cfg.Devices = 200
	ds := GenerateM2M(cfg)
	if len(ds.Transactions) == 0 {
		t.Fatal("no transactions")
	}
	scfg := DefaultSMIPConfig()
	scfg.NativeMeters, scfg.RoamingMeters = 100, 100
	smip := GenerateSMIP(scfg)
	if len(smip.Devices) != 200 {
		t.Fatalf("smip devices = %d", len(smip.Devices))
	}
}

func TestFacadeFederation(t *testing.T) {
	// The facade federation: a multi-site session whose classic
	// single-site accessors keep working, plus the cross-site views.
	fed := NewFederation(1, 0.05, 1, DefaultFederationHosts()[:2]...)
	sites := fed.Sites()
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(sites))
	}
	data := fed.FederationData()
	if len(data.Fleet) == 0 || data.World == nil {
		t.Fatal("federation dataset missing fleet or world")
	}
	for _, site := range sites {
		if len(site.Summaries()) == 0 {
			t.Errorf("site %v has no summaries", site.Host())
		}
		if _, ok := ExperimentByID("fed-sites"); !ok {
			t.Fatal("fed-sites runner missing")
		}
	}
	// A Session is a single-site Federation: the alias must keep the
	// historical constructor surface intact.
	var sess *Session = NewSession(1, 0.05)
	if sess.MNO() == nil {
		t.Fatal("session MNO dataset missing")
	}
}

func TestFacadeFederationGenerator(t *testing.T) {
	cfg := DefaultFederationConfig()
	cfg.FleetDevices, cfg.NativePerSite, cfg.Days = 120, 80, 5
	fed := GenerateFederation(cfg)
	if len(fed.Sites) != len(DefaultFederationHosts()) {
		t.Fatalf("sites = %d", len(fed.Sites))
	}
	for _, s := range fed.Sites {
		if len(s.Catalog.Records) == 0 {
			t.Errorf("site %v: empty catalog", s.Host)
		}
	}
	if len(fed.Schedule) != len(fed.Fleet) {
		t.Fatalf("schedule rows = %d, fleet = %d", len(fed.Schedule), len(fed.Fleet))
	}

	// The federated planes are views of the same fleet and schedule.
	var m2m *FederationM2M = GenerateFederationM2M(fed)
	if len(m2m.Transactions) == 0 {
		t.Error("federated M2M plane is empty")
	}
	var smip *FederationSMIP = GenerateFederationSMIP(fed)
	if len(smip.Sites) != len(fed.Sites) {
		t.Fatalf("SMIP plane sites = %d, want %d", len(smip.Sites), len(fed.Sites))
	}
	streamed := 0
	StreamFederationM2M(fed, func(Transaction) { streamed++ })
	if streamed != len(m2m.Transactions) {
		t.Errorf("streamed %d transactions, batch has %d", streamed, len(m2m.Transactions))
	}
}
